// Package loadtest drives a running qsdnn serve daemon with a fixed
// pool of concurrent clients and reports client-observed latency
// percentiles and throughput. scripts/bench.sh uses it to produce
// BENCH_serve.json; the package test doubles as the >= 64-client
// zero-error acceptance gate.
package loadtest

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Options configures one load run.
type Options struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Clients is the number of concurrent clients (default 64).
	Clients int
	// Requests is the total request count (default 4 * Clients).
	Requests int
	// Bodies are the POST /v1/optimize payloads, assigned round-robin.
	Bodies [][]byte
	// Timeout bounds one request (default 2 minutes).
	Timeout time.Duration
}

// Result is the aggregate outcome of a load run.
type Result struct {
	Requests   int           `json:"requests"`
	Clients    int           `json:"clients"`
	Errors     int           `json:"errors"`
	ByStatus   map[int]int   `json:"by_status"`
	P50        time.Duration `json:"p50_ns"`
	P95        time.Duration `json:"p95_ns"`
	P99        time.Duration `json:"p99_ns"`
	Max        time.Duration `json:"max_ns"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	Throughput float64       `json:"requests_per_second"`
}

// String renders the run for humans.
func (r *Result) String() string {
	return fmt.Sprintf("%d requests / %d clients: %d errors, p50 %.2fms p95 %.2fms p99 %.2fms max %.2fms, %.1f req/s",
		r.Requests, r.Clients, r.Errors,
		float64(r.P50)/1e6, float64(r.P95)/1e6, float64(r.P99)/1e6, float64(r.Max)/1e6,
		r.Throughput)
}

// percentile returns the p-th percentile (0 < p <= 100) of sorted
// durations using nearest-rank.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Run fires opt.Requests POSTs at opt.BaseURL from opt.Clients
// concurrent workers. A request counts as an error if it fails at the
// transport layer or returns a status outside {200, 202, 429} — 429 is
// the daemon's documented backpressure answer, so the caller can
// decide from ByStatus whether rejections are acceptable for the run.
func Run(ctx context.Context, opt Options) (*Result, error) {
	if opt.BaseURL == "" {
		return nil, fmt.Errorf("loadtest: BaseURL is required")
	}
	if len(opt.Bodies) == 0 {
		return nil, fmt.Errorf("loadtest: at least one request body is required")
	}
	if opt.Clients <= 0 {
		opt.Clients = 64
	}
	if opt.Requests <= 0 {
		opt.Requests = 4 * opt.Clients
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 2 * time.Minute
	}
	client := &http.Client{Timeout: opt.Timeout}
	url := opt.BaseURL + "/v1/optimize"

	var mu sync.Mutex
	durations := make([]time.Duration, 0, opt.Requests)
	byStatus := map[int]int{}
	errorsN := 0

	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < opt.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				body := opt.Bodies[i%len(opt.Bodies)]
				t0 := time.Now()
				status, err := post(ctx, client, url, body)
				d := time.Since(t0)
				mu.Lock()
				durations = append(durations, d)
				byStatus[status]++
				if err != nil || (status != http.StatusOK && status != http.StatusAccepted && status != http.StatusTooManyRequests) {
					errorsN++
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < opt.Requests; i++ {
		select {
		case work <- i:
		case <-ctx.Done():
			close(work)
			wg.Wait()
			return nil, ctx.Err()
		}
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	res := &Result{
		Requests: len(durations),
		Clients:  opt.Clients,
		Errors:   errorsN,
		ByStatus: byStatus,
		P50:      percentile(durations, 50),
		P95:      percentile(durations, 95),
		P99:      percentile(durations, 99),
		Elapsed:  elapsed,
	}
	if len(durations) > 0 {
		res.Max = durations[len(durations)-1]
	}
	if elapsed > 0 {
		res.Throughput = float64(len(durations)) / elapsed.Seconds()
	}
	return res, nil
}

// post issues one request and returns the status code (0 on transport
// failure).
func post(ctx context.Context, client *http.Client, url string, body []byte) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return resp.StatusCode, err
	}
	return resp.StatusCode, nil
}
