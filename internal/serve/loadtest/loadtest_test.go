package loadtest

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/health"
	"repro/internal/profile"
	"repro/internal/resilience"
	"repro/internal/serve"
)

// faultyConfig is the shared chaos configuration of the resilience
// load gate and the degraded-mode bench record: half the non-Vanilla
// (layer, primitive) measurements fail permanently, a quarter fail
// transiently, breakers trip after 3 consecutive failures, brownout
// substitution is on, and every request runs under a deadline budget.
func faultyConfig() serve.Config {
	return serve.Config{
		MaxInflight:   2,
		QueueDepth:    256,
		SnapshotEvery: 200,
		MaxDeadline:   5 * time.Second,
		Brownout:      true,
		Faults: &profile.FaultConfig{
			Seed:          7,
			TransientRate: 0.25,
			PermanentRate: 0.5,
		},
		Robust:  &profile.Robust{MaxRetries: 1, MinValidFrac: 0.25},
		Breaker: &resilience.BreakerConfig{FailureThreshold: 3},
	}
}

// faultyBodies mixes quick jobs that finish inside the budget with
// 1e6-episode searches that cannot, all wait:true under a 2s
// deadline_ms.
func faultyBodies() [][]byte {
	var bodies [][]byte
	for seed := 1; seed <= 4; seed++ {
		bodies = append(bodies, []byte(fmt.Sprintf(
			`{"network":"lenet5","mode":"cpu","episodes":300,"samples":3,"seed":%d,"wait":true,"deadline_ms":2000}`, seed)))
		bodies = append(bodies, []byte(fmt.Sprintf(
			`{"network":"lenet5","mode":"cpu","episodes":1000000,"samples":3,"seed":%d,"wait":true,"deadline_ms":2000}`, 100+seed)))
	}
	return bodies
}

// TestLoadFaultyDeadline is the resilience acceptance gate: under a
// seeded 50%-failing source with per-request 2s deadline budgets,
// every request must complete (no hangs) and every response must be a
// valid plan, a best-effort budget-exhausted plan, a degraded cached
// plan, or an honest 429/503 with Retry-After — never a 500, never a
// bare rejection.
func TestLoadFaultyDeadline(t *testing.T) {
	srv, err := serve.New(faultyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain(0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	res, err := Run(context.Background(), Options{
		BaseURL:  ts.URL,
		Clients:  16,
		Requests: 64,
		Bodies:   faultyBodies(),
		Timeout:  60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.String())
	t.Logf("degraded: %+v budget_exhausted: %+v by_status: %+v", res.Degraded, res.BudgetExhausted, res.ByStatus)
	if res.Errors != 0 {
		t.Fatalf("%d client errors (hung request, 5xx, or rejection without Retry-After): %+v", res.Errors, res.ByStatus)
	}
	if res.Requests != 64 {
		t.Fatalf("recorded %d requests, want 64 (a hung request never records)", res.Requests)
	}
	for status := range res.ByStatus {
		switch status {
		case 200, 202, 429, 503:
		default:
			t.Fatalf("unexpected status %d in %+v", status, res.ByStatus)
		}
	}
	if res.BudgetExhausted.Count == 0 {
		t.Fatalf("no budget-exhausted best-effort plans served; 1e6-episode searches cannot finish in 2s: %+v", res.ByStatus)
	}
	st := srv.Status()
	if st.BudgetExhausted == 0 {
		t.Fatalf("daemon recorded no budget-exhausted completions: %+v", st)
	}
}

// driftConfig is the shared chaos configuration of the drift load gate
// and the drift bench record: ATLAS drifts in one step, NNPACK ramps
// over 4 rounds, canaries cover every (layer, primitive) pair each
// tick, and healing is manual (NoHeal) so the phase boundaries are
// deterministic.
func driftConfig() serve.Config {
	return serve.Config{
		MaxInflight: 2,
		QueueDepth:  256,
		Faults: &profile.FaultConfig{
			Seed:            7,
			DriftStep:       []string{"ATLAS"},
			DriftRamp:       []string{"NNPACK"},
			DriftFactor:     3,
			DriftRampRounds: 4,
		},
		Health: &health.Config{Seed: 3, CanarySize: 1 << 20, NoHeal: true},
	}
}

// runDriftPhase primes a plan, drifts the environment until the canary
// pass quarantines the affected libraries, fires the load against the
// quarantined daemon (every answer must be a 200 marked revalidating —
// never a 500), then triggers the self-healing re-optimization and
// measures how long it takes the fresh plan to land.
func runDriftPhase(t *testing.T, clients, requests int) (*Result, time.Duration) {
	t.Helper()
	srv, err := serve.New(driftConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain(0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := context.Background()
	prime := []byte(`{"network":"lenet5","mode":"cpu","episodes":300,"samples":3,"seed":1,"wait":true}`)
	if res, err := Run(ctx, Options{BaseURL: ts.URL, Clients: 1, Requests: 1, Bodies: [][]byte{prime}}); err != nil || res.Errors != 0 {
		t.Fatalf("prime request failed: %v %+v", err, res)
	}

	for i := 0; i < 3; i++ {
		srv.AdvanceDrift()
	}
	stats := srv.CanaryTick(ctx)
	if stats.Quarantined == 0 {
		t.Fatalf("canary pass confirmed no drift: %+v", stats)
	}

	res, err := Run(ctx, Options{
		BaseURL: ts.URL, Clients: clients, Requests: requests, Bodies: [][]byte{prime},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.String())
	if res.Errors != 0 {
		t.Fatalf("%d client errors under quarantine: %+v", res.Errors, res.ByStatus)
	}
	if res.ByStatus[200] != requests {
		t.Fatalf("status histogram under quarantine: %+v, want %d x 200", res.ByStatus, requests)
	}
	if res.Revalidating.Count != requests {
		t.Fatalf("%d of %d responses marked revalidating; a quarantined plan must say so",
			res.Revalidating.Count, requests)
	}

	t0 := time.Now()
	if n := srv.HealNow(); n == 0 {
		t.Fatal("HealNow enqueued no re-optimization")
	}
	deadline := time.Now().Add(60 * time.Second)
	for srv.Status().Healed == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("heal never landed: %+v", srv.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	timeToHeal := time.Since(t0)

	after, err := Run(ctx, Options{BaseURL: ts.URL, Clients: 1, Requests: 1, Bodies: [][]byte{prime}})
	if err != nil {
		t.Fatal(err)
	}
	if after.Errors != 0 || after.Revalidating.Count != 0 {
		t.Fatalf("healed plan still served revalidating: %+v", after)
	}
	return res, timeToHeal
}

// TestLoadDriftChaos is the drift acceptance gate: 64 concurrent
// clients against a daemon whose profiled environment has confirmably
// drifted — zero errors, every response an honest revalidating 200,
// and the self-healing re-optimization lands once triggered.
func TestLoadDriftChaos(t *testing.T) {
	runDriftPhase(t, 64, 256)
}

// TestLoad64Clients is the load acceptance gate: 64 concurrent clients,
// 256 requests over 8 distinct jobs, zero errors, and sane percentile
// accounting — all against a real in-process daemon.
func TestLoad64Clients(t *testing.T) {
	srv, err := serve.New(serve.Config{MaxInflight: 4, QueueDepth: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain(0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var bodies [][]byte
	for seed := 1; seed <= 8; seed++ {
		bodies = append(bodies, []byte(fmt.Sprintf(
			`{"network":"lenet5","mode":"cpu","episodes":300,"samples":3,"seed":%d,"wait":true}`, seed)))
	}
	res, err := Run(context.Background(), Options{
		BaseURL:  ts.URL,
		Clients:  64,
		Requests: 256,
		Bodies:   bodies,
		Timeout:  2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.String())
	if res.Errors != 0 {
		t.Fatalf("%d client errors: %+v", res.Errors, res.ByStatus)
	}
	if res.Requests != 256 {
		t.Fatalf("recorded %d requests, want 256", res.Requests)
	}
	if res.ByStatus[200] != 256 {
		t.Fatalf("status histogram: %+v, want 256 x 200 (wait:true never queues a reply)", res.ByStatus)
	}
	if res.P50 <= 0 || res.P95 < res.P50 || res.P99 < res.P95 || res.Max < res.P99 {
		t.Fatalf("percentiles not monotone: %+v", res)
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput %v", res.Throughput)
	}
	if st := srv.Status(); st.Rejected != 0 || st.Failed != 0 {
		t.Fatalf("daemon outcomes: %+v", st)
	}
}

// TestLoadRecord is the scripts/bench.sh hook: with QSDNN_LOADTEST_OUT
// set to an absolute path it runs the standard 64-client load against
// an in-process daemon and writes the measured percentiles and
// throughput there as JSON (BENCH_serve.json); otherwise it skips.
func TestLoadRecord(t *testing.T) {
	out := os.Getenv("QSDNN_LOADTEST_OUT")
	if out == "" {
		t.Skip("set QSDNN_LOADTEST_OUT to record a load run (see scripts/bench.sh)")
	}
	srv, err := serve.New(serve.Config{MaxInflight: 4, QueueDepth: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain(0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var bodies [][]byte
	for seed := 1; seed <= 8; seed++ {
		bodies = append(bodies, []byte(fmt.Sprintf(
			`{"network":"lenet5","mode":"cpu","episodes":300,"samples":3,"seed":%d,"wait":true}`, seed)))
	}
	res, err := Run(context.Background(), Options{BaseURL: ts.URL, Clients: 64, Requests: 256, Bodies: bodies})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.String())
	if res.Errors != 0 {
		t.Fatalf("%d client errors: %+v", res.Errors, res.ByStatus)
	}

	// Second phase: the degraded-mode workload — seeded fault
	// injection, breakers, brownout, and 2s deadline budgets — so the
	// bench record also carries degraded-response and deadline-hit
	// percentiles.
	fsrv, err := serve.New(faultyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer fsrv.Drain(0)
	fts := httptest.NewServer(fsrv.Handler())
	defer fts.Close()
	fres, err := Run(context.Background(), Options{
		BaseURL: fts.URL, Clients: 16, Requests: 64, Bodies: faultyBodies(), Timeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(fres.String())
	if fres.Errors != 0 {
		t.Fatalf("%d degraded-phase client errors: %+v", fres.Errors, fres.ByStatus)
	}

	// Third phase: the drift workload — confirmed environment drift,
	// quarantined libraries, every answer a revalidating 200 — plus how
	// long the triggered self-healing re-optimization took to land.
	dres, timeToHeal := runDriftPhase(t, 16, 64)

	ms := func(d time.Duration) float64 { return float64(d) / 1e6 }
	payload, err := json.MarshalIndent(struct {
		Workload     string  `json:"workload"`
		P50Ms        float64 `json:"p50_ms"`
		P95Ms        float64 `json:"p95_ms"`
		P99Ms        float64 `json:"p99_ms"`
		MaxMs        float64 `json:"max_ms"`
		RPS          float64 `json:"requests_per_second"`
		Load         *Result `json:"load"`
		Faulty       *Result `json:"faulty_load"`
		Drift        *Result `json:"drift_load"`
		TimeToHealMs float64 `json:"drift_time_to_heal_ms"`
	}{
		Workload: "lenet5 cpu e300 s3, 8 distinct seeds, wait:true",
		P50Ms:    ms(res.P50), P95Ms: ms(res.P95), P99Ms: ms(res.P99), MaxMs: ms(res.Max),
		RPS:          res.Throughput,
		Load:         res,
		Faulty:       fres,
		Drift:        dres,
		TimeToHealMs: ms(timeToHeal),
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(payload, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	ds := make([]time.Duration, 100)
	for i := range ds {
		ds[i] = time.Duration(i+1) * time.Millisecond
	}
	for _, tc := range []struct {
		p    float64
		want time.Duration
	}{{50, 50 * time.Millisecond}, {95, 95 * time.Millisecond}, {99, 99 * time.Millisecond}, {100, 100 * time.Millisecond}} {
		if got := percentile(ds, tc.p); got != tc.want {
			t.Fatalf("p%.0f = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
}
