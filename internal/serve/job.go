package serve

import (
	"context"
	"encoding/json"
	"math"
	"sync"
	"time"
)

// Job states.
const (
	// StateQueued marks a job admitted but not yet claimed by a worker.
	StateQueued = "queued"
	// StateRunning marks a job a worker is executing.
	StateRunning = "running"
	// StateDone marks a finished job with a plan.
	StateDone = "done"
	// StateFailed marks a job that errored.
	StateFailed = "failed"
	// StateInterrupted marks a job stopped by a hard drain; its
	// checkpoint is durable and a restarted server resumes it.
	StateInterrupted = "interrupted"
	// StateCanceled marks a job canceled before completion: every
	// waiting client disconnected, its deadline budget expired without
	// a usable plan, or the watchdog declared it stalled.
	StateCanceled = "canceled"
)

// job is one admitted optimization: the validated spec plus the state
// machine the handlers observe. Progress events accumulate in order;
// subscribers (the SSE endpoint, waiting POSTs) follow them via the
// update channel, which is closed and replaced on every publish — a
// broadcast without per-subscriber bookkeeping.
type job struct {
	id   string
	spec *jobSpec

	// ctx is the job's execution context, armed at admission: it
	// carries the deadline budget (counted from admission, queue wait
	// included) and is canceled when the job is abandoned or stalls.
	// cancelCause records why. stopTimer releases the deadline timer.
	ctx         context.Context
	cancelCause context.CancelCauseFunc
	stopTimer   context.CancelFunc
	deadline    time.Time // zero when no budget

	mu       sync.Mutex
	state    string
	events   []Event
	update   chan struct{}
	planJSON json.RawMessage
	err      error
	resumed  bool
	degraded bool
	// waiters counts clients blocked on this job (wait-mode POSTs).
	// pinned marks a job that must run regardless of waiters: a 202
	// async submission (the client will poll), a durable-record
	// obligation, or a resumed job.
	waiters int
	pinned  bool
	// revalidate marks a self-healing re-optimization of an already
	// cached plan: the worker skips the cached-plan fast path (the
	// point is to replace it) and reports completion to the health
	// monitor via healDone.
	revalidate bool

	// done is closed exactly once, at the terminal transition
	// (done/failed/interrupted/canceled).
	done chan struct{}
}

func newJob(id string, spec *jobSpec) *job {
	return &job{
		id:     id,
		spec:   spec,
		state:  StateQueued,
		update: make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// arm derives the job's execution context from parent: cancelable with
// cause, plus a deadline when budget > 0. Must be called before the
// job is claimable by a worker.
func (j *job) arm(parent context.Context, budget time.Duration) {
	j.ctx, j.cancelCause = context.WithCancelCause(parent)
	j.stopTimer = func() {}
	if budget > 0 {
		j.deadline = time.Now().Add(budget)
		j.ctx, j.stopTimer = context.WithDeadline(j.ctx, j.deadline)
	}
}

// release frees the job's context resources; safe to call repeatedly.
func (j *job) release() {
	if j.stopTimer != nil {
		j.stopTimer()
	}
	if j.cancelCause != nil {
		j.cancelCause(nil)
	}
}

// addWaiter registers one blocked client.
func (j *job) addWaiter() {
	j.mu.Lock()
	j.waiters++
	j.mu.Unlock()
}

// dropWaiter unregisters one blocked client; when the last waiter of
// an unpinned, still-live job leaves, the job is canceled — nobody
// will ever read the result, so finishing it is pure waste.
func (j *job) dropWaiter() {
	j.mu.Lock()
	j.waiters--
	abandon := j.waiters == 0 && !j.pinned
	j.mu.Unlock()
	if !abandon {
		return
	}
	select {
	case <-j.done:
		return // already terminal
	default:
	}
	if j.cancelCause != nil {
		j.cancelCause(errAbandoned)
	}
}

// setDegraded marks the job's result as a brownout substitution.
func (j *job) setDegraded() {
	j.mu.Lock()
	j.degraded = true
	j.mu.Unlock()
}

// publishLocked appends an event and wakes every subscriber. Callers
// hold j.mu.
func (j *job) publishLocked(ev Event) {
	j.events = append(j.events, ev)
	close(j.update)
	j.update = make(chan struct{})
}

// setRunning transitions queued -> running and emits the first event.
func (j *job) setRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateRunning
	j.publishLocked(Event{State: StateRunning, Episode: 0, Total: j.spec.Episodes})
}

// progress records a checkpoint-cadence boundary.
func (j *job) progress(episode int, best float64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if math.IsInf(best, 0) || math.IsNaN(best) {
		best = 0
	}
	j.publishLocked(Event{State: j.state, Episode: episode, Total: j.spec.Episodes, BestSeconds: best})
}

// finish moves the job to a terminal state (exactly once) and wakes
// everyone waiting on it.
func (j *job) finish(state string, plan json.RawMessage, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	select {
	case <-j.done:
		return // already terminal
	default:
	}
	j.state = state
	j.planJSON = plan
	j.err = err
	ev := Event{State: state, Total: j.spec.Episodes}
	if n := len(j.events); n > 0 {
		ev.Episode = j.events[n-1].Episode
		ev.BestSeconds = j.events[n-1].BestSeconds
	}
	if state == StateDone {
		ev.Episode = j.spec.Episodes
	}
	j.publishLocked(ev)
	close(j.done)
}

// status snapshots the job for the /v1/jobs/{id} reply.
func (j *job) status() OptimizeResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	resp := OptimizeResponse{ID: j.id, State: j.state, Plan: j.planJSON, Degraded: j.degraded}
	if n := len(j.events); n > 0 {
		ev := j.events[n-1]
		resp.Progress = &ev
	}
	if j.err != nil {
		resp.Error = j.err.Error()
	}
	return resp
}

// eventsFrom returns the events at index >= from, a channel that is
// closed when more arrive, and whether the job is already terminal.
func (j *job) eventsFrom(from int) ([]Event, <-chan struct{}, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var evs []Event
	if from < len(j.events) {
		evs = append(evs, j.events[from:]...)
	}
	terminal := false
	select {
	case <-j.done:
		terminal = true
	default:
	}
	return evs, j.update, terminal
}
