// Package serve is the optimization-as-a-service daemon: a long-lived
// HTTP server that accepts (network, platform, objective, budget)
// requests and returns optimized deployment plans, composing the
// layers the batch pipeline already hardened — admission control and
// bounded queueing in front of a fixed worker set (each job executes
// under internal/pool's panic isolation), request coalescing of
// identical jobs plus single-flight LUT profiling via runner.Flight,
// a persistent plan/checkpoint store built on internal/store's atomic
// checksummed writes and last-good rotation with a warm in-memory LRU
// in front, streaming search progress from core.SearchCheckpointed
// cadence callbacks, and graceful drain that lets in-flight searches
// finish — or, past the drain deadline, checkpoint durably and resume
// on the next start.
//
// The JSON API:
//
//	POST /v1/optimize            submit a job (or get a cached plan)
//	GET  /v1/jobs/{id}           poll a job's status and result
//	GET  /v1/jobs/{id}/events    stream progress (server-sent events)
//	GET  /healthz                liveness (503 while draining)
//	GET  /statusz                counters: queue, cache, coalescing
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/lut"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/platform"
	"repro/internal/primitives"
)

// Budget ceilings: a request past these is a client error, not a
// denial-of-service vector. They sit far above anything the paper's
// experiments need (1000 episodes, 50 samples).
const (
	// MaxEpisodes bounds the per-request search budget.
	MaxEpisodes = 1_000_000
	// MaxSamples bounds the per-request profiling average count.
	MaxSamples = 100_000
	// MaxDeadlineMS bounds the per-request deadline budget (one hour).
	MaxDeadlineMS = 3_600_000
	// MaxBodyBytes bounds the request body the decoder will read.
	MaxBodyBytes = 1 << 20
)

// OptimizeRequest is the POST /v1/optimize body. Zero fields take the
// paper's defaults (tx2-like platform, gpgpu mode, latency objective,
// 1000 episodes, 50 samples, seed 1). Budgets are declared as float64
// so malformed values (NaN, ±Inf, negatives, fractions, overflow) are
// rejected with a 400 by validation instead of being silently
// truncated by integer decoding.
type OptimizeRequest struct {
	// Network is the zoo model name (required).
	Network string `json:"network"`
	// Platform is the board preset name (default "tx2-like").
	Platform string `json:"platform,omitempty"`
	// Mode is "cpu" or "gpgpu" (default "gpgpu").
	Mode string `json:"mode,omitempty"`
	// Objective is the optimization target; only "latency" today.
	Objective string `json:"objective,omitempty"`
	// Episodes is the search budget (default 1000).
	Episodes float64 `json:"episodes,omitempty"`
	// Samples is the profiling average count (default 50).
	Samples float64 `json:"samples,omitempty"`
	// Seed drives the search agent (default 1).
	Seed int64 `json:"seed,omitempty"`
	// DeadlineMS is the optional end-to-end latency budget in
	// milliseconds, measured from admission. The server caps it at its
	// -max-deadline; a job that exhausts it returns its best-so-far
	// plan marked budget_exhausted (or a degraded cached plan under
	// brownout) instead of running on. 0 means no client deadline.
	DeadlineMS float64 `json:"deadline_ms,omitempty"`
	// Wait blocks the POST until the job finishes and returns the
	// plan inline instead of a 202 + job id.
	Wait bool `json:"wait,omitempty"`
}

// jobSpec is a validated, defaulted request — the canonical form every
// downstream stage (coalescing keys, search config, plan payload)
// works from.
type jobSpec struct {
	Network   string
	Platform  string
	Mode      primitives.Mode
	ModeName  string
	Objective string
	Episodes  int
	Samples   int
	Seed      int64
	// Deadline is the client's end-to-end budget (0 = none). It is
	// deliberately NOT part of key(): the plan a request produces does
	// not depend on its deadline, so requests that differ only in
	// deadline still coalesce and share cached plans.
	Deadline time.Duration
}

// badRequestError marks a client error the handler maps to 400.
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &badRequestError{msg: fmt.Sprintf(format, args...)}
}

// isBadRequest reports whether err is a request-validation failure.
func isBadRequest(err error) bool {
	_, ok := err.(*badRequestError)
	return ok
}

// decodeOptimizeRequest reads, decodes, and validates a request body.
// Every failure mode — malformed JSON, wrong types, NaN/Inf/negative
// budgets, unknown network/platform/mode/objective — is a
// badRequestError; the decoder never panics on any input (pinned by
// FuzzOptimizeRequest).
func decodeOptimizeRequest(r io.Reader) (*OptimizeRequest, *jobSpec, error) {
	data, err := io.ReadAll(io.LimitReader(r, MaxBodyBytes+1))
	if err != nil {
		return nil, nil, badRequest("reading body: %v", err)
	}
	if len(data) > MaxBodyBytes {
		return nil, nil, badRequest("body exceeds %d bytes", MaxBodyBytes)
	}
	var req OptimizeRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, nil, badRequest("decoding request: %v", err)
	}
	spec, err := req.spec()
	if err != nil {
		return nil, nil, err
	}
	return &req, spec, nil
}

// budget validates one float-declared integer budget and applies its
// default.
func budget(name string, v float64, def, max int) (int, error) {
	if v == 0 {
		return def, nil
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, badRequest("%s must be a finite number (got %v)", name, v)
	}
	if v < 0 {
		return 0, badRequest("%s must be positive (got %v)", name, v)
	}
	if v != math.Trunc(v) {
		return 0, badRequest("%s must be an integer (got %v)", name, v)
	}
	if v > float64(max) {
		return 0, badRequest("%s exceeds the limit %d (got %v)", name, max, v)
	}
	return int(v), nil
}

// spec validates the request and returns its canonical form.
func (r *OptimizeRequest) spec() (*jobSpec, error) {
	s := &jobSpec{
		Network:   strings.TrimSpace(r.Network),
		Platform:  r.Platform,
		ModeName:  r.Mode,
		Objective: r.Objective,
		Seed:      r.Seed,
	}
	if s.Network == "" {
		return nil, badRequest("network is required (one of %s)", strings.Join(models.All(), ", "))
	}
	if _, err := models.Build(s.Network); err != nil {
		return nil, badRequest("unknown network %q (one of %s)", s.Network, strings.Join(models.All(), ", "))
	}
	if s.Platform == "" {
		s.Platform = "tx2-like"
	}
	if _, ok := platform.Preset(s.Platform); !ok {
		return nil, badRequest("unknown platform %q", s.Platform)
	}
	switch s.ModeName {
	case "", "gpgpu":
		s.Mode, s.ModeName = primitives.ModeGPGPU, "gpgpu"
	case "cpu":
		s.Mode = primitives.ModeCPU
	default:
		return nil, badRequest("unknown mode %q (want cpu or gpgpu)", s.ModeName)
	}
	switch s.Objective {
	case "", "latency":
		s.Objective = "latency"
	default:
		return nil, badRequest("unknown objective %q (only latency is served)", s.Objective)
	}
	var err error
	if s.Episodes, err = budget("episodes", r.Episodes, 1000, MaxEpisodes); err != nil {
		return nil, err
	}
	if s.Samples, err = budget("samples", r.Samples, 50, MaxSamples); err != nil {
		return nil, err
	}
	deadlineMS, err := budget("deadline_ms", r.DeadlineMS, 0, MaxDeadlineMS)
	if err != nil {
		return nil, err
	}
	s.Deadline = time.Duration(deadlineMS) * time.Millisecond
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s, nil
}

// key is the request-coalescing identity: two requests with equal keys
// produce byte-identical plans, so they share one search and one
// stored plan.
func (s *jobSpec) key() string {
	return fmt.Sprintf("%s|%s|%s|%s|e%d|s%d|r%d",
		s.Network, s.Platform, s.ModeName, s.Objective, s.Episodes, s.Samples, s.Seed)
}

// familyKey is the brownout-substitution identity: the (network,
// platform, mode, objective) prefix of key(). Plans within one family
// answer the same deployment question — they differ only in search
// budget, sampling effort, or seed — so the newest cached plan of the
// family is an honest degraded answer when the exact plan cannot be
// computed in time.
func (s *jobSpec) familyKey() string {
	return fmt.Sprintf("%s|%s|%s|%s", s.Network, s.Platform, s.ModeName, s.Objective)
}

// familyOfKey reduces a full coalescing key to its family prefix.
func familyOfKey(key string) string {
	parts := strings.SplitN(key, "|", 5)
	if len(parts) < 5 {
		return key
	}
	return strings.Join(parts[:4], "|")
}

// lutKey is the profiling identity: requests that agree on it consume
// byte-identical look-up tables (profiling is deterministic per sample
// index), so profiling is single-flighted per lutKey even across
// requests with different seeds or episode budgets.
func (s *jobSpec) lutKey() string {
	return fmt.Sprintf("%s|%s|%s|s%d", s.Network, s.Platform, s.ModeName, s.Samples)
}

// request reconstructs the normalized wire request — the form the
// durable job record persists so a killed server can re-admit the job
// on restart.
func (s *jobSpec) request() OptimizeRequest {
	return OptimizeRequest{
		Network:    s.Network,
		Platform:   s.Platform,
		Mode:       s.ModeName,
		Objective:  s.Objective,
		Episodes:   float64(s.Episodes),
		Samples:    float64(s.Samples),
		Seed:       s.Seed,
		DeadlineMS: float64(s.Deadline / time.Millisecond),
	}
}

// PlanChoice is one layer's selected primitive in a served plan.
type PlanChoice struct {
	Layer     string  `json:"layer"`
	Kind      string  `json:"kind"`
	Primitive string  `json:"primitive"`
	Library   string  `json:"library"`
	Processor string  `json:"processor"`
	Seconds   float64 `json:"seconds"`
}

// PlanResponse is an optimized deployment plan as served to clients.
// It carries no wall-clock or session-local state (no learning curve,
// no elapsed times), so a plan computed cold, from cache, coalesced,
// or resumed after a crash is byte-identical for a given request.
type PlanResponse struct {
	Network          string       `json:"network"`
	Platform         string       `json:"platform"`
	Mode             string       `json:"mode"`
	Objective        string       `json:"objective"`
	Episodes         int          `json:"episodes"`
	Samples          int          `json:"samples"`
	Seed             int64        `json:"seed"`
	Seconds          float64      `json:"seconds"`
	VanillaSeconds   float64      `json:"vanilla_seconds"`
	BSLSeconds       float64      `json:"bsl_seconds"`
	BSLLibrary       string       `json:"bsl_library"`
	SpeedupVsVanilla float64      `json:"speedup_vs_vanilla"`
	SpeedupVsBSL     float64      `json:"speedup_vs_bsl"`
	Assignment       []int        `json:"assignment"`
	Choices          []PlanChoice `json:"choices"`
	// BudgetExhausted marks a best-so-far plan returned because the
	// request's deadline budget ran out before the full episode budget;
	// EpisodesRun is how many episodes actually completed. Both are
	// omitted from full-budget plans, which stay byte-identical to
	// pre-deadline servers.
	BudgetExhausted bool `json:"budget_exhausted,omitempty"`
	EpisodesRun     int  `json:"episodes_run,omitempty"`
}

// finite maps non-finite measurements to 0 so the plan stays
// marshalable: on a heavily degraded table a baseline (all-Vanilla, or
// a whole-library substitution) can be unmeasurable (+Inf) even though
// the mixed plan itself is fine, and JSON cannot carry Inf/NaN. A zero
// baseline (and the zero speedup it implies) tells the client "no
// baseline on this table" the same way a zero BestSeconds does in
// progress events. Healthy tables only ever see finite values, so
// full-budget plans are byte-identical to pre-degradation servers.
func finite(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return 0
	}
	return v
}

// buildPlanResponse assembles the served plan from a finished search —
// the serve-side mirror of the public qsdnn.Report, restricted to
// fields that are deterministic for a fixed request.
func buildPlanResponse(spec *jobSpec, net *nn.Network, tab *lut.Table, res *core.Result) *PlanResponse {
	bslLib, bsl := core.BestSingleLibrary(tab)
	p := &PlanResponse{
		Network:        spec.Network,
		Platform:       spec.Platform,
		Mode:           spec.ModeName,
		Objective:      spec.Objective,
		Episodes:       spec.Episodes,
		Samples:        spec.Samples,
		Seed:           spec.Seed,
		Seconds:        finite(res.Time),
		VanillaSeconds: finite(core.VanillaTime(tab)),
		BSLSeconds:     finite(bsl.Time),
		BSLLibrary:     bslLib.String(),
		Assignment:     make([]int, 0, len(res.Assignment)),
	}
	if p.Seconds > 0 {
		p.SpeedupVsVanilla = p.VanillaSeconds / p.Seconds
		p.SpeedupVsBSL = p.BSLSeconds / p.Seconds
	}
	for _, id := range res.Assignment {
		p.Assignment = append(p.Assignment, int(id))
	}
	for i := 1; i < net.Len(); i++ {
		l := net.Layers[i]
		pr := primitives.ByID(res.Assignment[i])
		p.Choices = append(p.Choices, PlanChoice{
			Layer:     l.Name,
			Kind:      l.Kind.String(),
			Primitive: pr.Name,
			Library:   pr.Lib.String(),
			Processor: pr.Proc.String(),
			Seconds:   finite(tab.Time(i, pr.Idx)),
		})
	}
	return p
}

// Event is one progress update of a running job, emitted at every
// checkpoint-cadence boundary and at the terminal transition.
type Event struct {
	// State is the job state at the event ("running", "done",
	// "failed", "interrupted").
	State string `json:"state"`
	// Episode is the number of episodes completed so far.
	Episode int `json:"episode"`
	// Total is the request's episode budget.
	Total int `json:"total"`
	// BestSeconds is the best inference time found so far; 0 until a
	// first episode completes (JSON cannot carry +Inf).
	BestSeconds float64 `json:"best_seconds,omitempty"`
}

// OptimizeResponse is the POST /v1/optimize and GET /v1/jobs/{id}
// reply envelope.
type OptimizeResponse struct {
	// ID is the job id (empty for purely cache-served replies).
	ID string `json:"id,omitempty"`
	// State is "queued", "running", "done", "failed" or "interrupted".
	State string `json:"state"`
	// Cached marks a plan served from the store/LRU without a search.
	Cached bool `json:"cached,omitempty"`
	// Degraded marks a brownout reply: Plan is the newest cached plan
	// of the request's family (same network/platform/mode/objective),
	// not the exact plan requested. The response carries a Retry-After
	// estimating when the exact plan could be computed.
	Degraded bool `json:"degraded,omitempty"`
	// Progress is the latest progress event of a running job.
	Progress *Event `json:"progress,omitempty"`
	// Plan is the optimized plan, present when State is "done". Kept
	// raw so the bytes served are exactly the bytes stored.
	Plan json.RawMessage `json:"plan,omitempty"`
	// Error is the failure cause when State is "failed".
	Error string `json:"error,omitempty"`
	// PlanEpoch is the profile epoch the served plan's LUT was measured
	// under; Age is how many epochs the measurement environment has
	// advanced since (0 = current). Both live on the envelope, not the
	// plan, so plan bytes stay byte-identical across epochs.
	PlanEpoch int64 `json:"plan_epoch,omitempty"`
	Age       int64 `json:"age,omitempty"`
	// Revalidating marks a cached plan served while its measurements
	// are quarantined (or past TTL) and a background re-optimization is
	// pending or in flight: still a usable answer — never a 500 — but
	// the client is told it may be superseded.
	Revalidating bool `json:"revalidating,omitempty"`
}

// specFromKey inverts jobSpec.key(): it parses the canonical 7-part
// coalescing key back into a validated spec. Used when rebuilding
// health bookkeeping from durable plan keys at boot and when a heal
// job is enqueued from a stored key rather than a live request.
func specFromKey(key string) (*jobSpec, error) {
	parts := strings.Split(key, "|")
	if len(parts) != 7 {
		return nil, fmt.Errorf("serve: plan key %q: want 7 fields, got %d", key, len(parts))
	}
	var episodes, samples int
	var seed int64
	if _, err := fmt.Sscanf(parts[4], "e%d", &episodes); err != nil {
		return nil, fmt.Errorf("serve: plan key %q: bad episodes field %q", key, parts[4])
	}
	if _, err := fmt.Sscanf(parts[5], "s%d", &samples); err != nil {
		return nil, fmt.Errorf("serve: plan key %q: bad samples field %q", key, parts[5])
	}
	if _, err := fmt.Sscanf(parts[6], "r%d", &seed); err != nil {
		return nil, fmt.Errorf("serve: plan key %q: bad seed field %q", key, parts[6])
	}
	req := OptimizeRequest{
		Network:   parts[0],
		Platform:  parts[1],
		Mode:      parts[2],
		Objective: parts[3],
		Episodes:  float64(episodes),
		Samples:   float64(samples),
		Seed:      seed,
	}
	spec, err := req.spec()
	if err != nil {
		return nil, fmt.Errorf("serve: plan key %q: %w", key, err)
	}
	if spec.key() != key {
		return nil, fmt.Errorf("serve: plan key %q does not round-trip (got %q)", key, spec.key())
	}
	return spec, nil
}
