package serve

import (
	"context"
	"encoding/json"
	"math"
	"sort"
	"time"

	"repro/internal/health"
	"repro/internal/lut"
	"repro/internal/nn"
	"repro/internal/platform"
	"repro/internal/primitives"
	"repro/internal/profile"
	"repro/internal/resilience"
)

// This file is the serve side of the plan-health subsystem: LUT
// registration with profile epochs and per-library fingerprints,
// deterministic canary re-profiling, drift quarantine, and the
// self-healing re-optimization that refreshes stale cached plans
// through the normal admission/coalescing machinery.

// lutInfo is the server's health registration of one profiled LUT:
// everything the canary sampler needs to re-measure entries, plus the
// staleness marks the quarantine machinery sets.
type lutInfo struct {
	lutKey   string
	network  string
	platform string
	modeName string
	mode     primitives.Mode
	samples  int
	net      *nn.Network
	board    *platform.Platform
	tab      *lut.Table

	// fps / fpByLib are the per-library measurement fingerprints
	// (median + MAD) computed when the table was registered.
	fps     []health.Fingerprint
	fpByLib map[string]health.Fingerprint

	// epoch is the profile epoch this table was measured under.
	epoch int64
	// round is the table's canary rotation counter.
	round int64
	// staleLibs marks libraries whose measurements were quarantined
	// as drifted; plans priced on this table are served revalidating
	// until a re-profile + re-search replaces them.
	staleLibs map[string]bool
	// fastFails marks a table built while a breaker was fast-failing
	// (candidates dropped without ever being measured); breakerStale
	// marks it evicted for re-profiling once the breaker closed.
	fastFails    bool
	breakerStale bool
}

// stale reports whether plans priced on this table need revalidation.
func (li *lutInfo) stale() bool { return len(li.staleLibs) > 0 || li.breakerStale }

// registerLUT records (or refreshes) the health registration for the
// table a job just obtained from the single-flight cache. A table
// pointer already registered is a cache hit — same epoch. A new table
// under an existing key is a re-profile: the profile epoch advances,
// and any staleness of the replaced registration is gone (the fresh
// table measured everything again).
func (s *Server) registerLUT(spec *jobSpec, net *nn.Network, board *platform.Platform, tab *lut.Table, rep *profile.Report) *lutInfo {
	k := spec.lutKey()
	s.lutMu.Lock()
	defer s.lutMu.Unlock()
	if prev := s.luts[k]; prev != nil && prev.tab == tab {
		return prev
	}
	li := &lutInfo{
		lutKey:    k,
		network:   spec.Network,
		platform:  spec.Platform,
		modeName:  spec.ModeName,
		mode:      spec.Mode,
		samples:   spec.Samples,
		net:       net,
		board:     board,
		tab:       tab,
		fps:       health.Fingerprints(spec.Platform, tab),
		fpByLib:   map[string]health.Fingerprint{},
		staleLibs: map[string]bool{},
	}
	for _, fp := range li.fps {
		li.fpByLib[fp.Library] = fp
	}
	if rep != nil && rep.FastFails > 0 {
		li.fastFails = true
	}
	if prev := s.luts[k]; prev != nil {
		li.epoch = s.monitor.NextEpoch()
		li.round = prev.round
	} else {
		li.epoch = s.monitor.Epoch()
	}
	s.luts[k] = li
	s.maybeMarkHealedLocked(spec.Platform)
	return li
}

// lutEpochFor returns the registered table's staleness and epoch for a
// profiling key (ok=false when the key was never registered).
func (s *Server) lutStateFor(lutKey string) (stale bool, epoch int64, ok bool) {
	s.lutMu.Lock()
	defer s.lutMu.Unlock()
	li := s.luts[lutKey]
	if li == nil {
		return false, 0, false
	}
	return li.stale(), li.epoch, true
}

// faultSource returns the shared fault injector for a profiling key,
// creating it on first use. Sharing one injector per key (instead of
// one per build) is what lets injected drift persist across
// re-profiles and be observed by canaries: the environment drifts,
// not the run.
func (s *Server) faultSource(lutKey string, sim profile.Source) *profile.FaultSource {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	fs := s.faultSrcs[lutKey]
	if fs == nil {
		fs = profile.NewFaultSource(sim, *s.cfg.Faults)
		fs.SetDriftRound(s.driftRound)
		s.faultSrcs[lutKey] = fs
	}
	return fs
}

// AdvanceDrift advances the injected-drift round on every fault
// source (the chaos harness's "the environment just shifted" lever)
// and returns the new round. No-op counters still advance when no
// sources exist yet; sources created later start at the current round.
func (s *Server) AdvanceDrift() int64 {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	s.driftRound++
	for _, fs := range s.faultSrcs {
		fs.SetDriftRound(s.driftRound)
	}
	return s.driftRound
}

// canarySource composes the measurement stack a canary re-measurement
// runs through: the same simulator + fault injector + breaker guard a
// real profiling run uses, so canaries observe exactly what a
// re-profile would — including breaker fast-fails, whose half-open
// probes the canaries double as.
func (s *Server) canarySource(li *lutInfo) profile.FallibleSource {
	sim := profile.NewSimSource(li.net, li.board)
	var src profile.FallibleSource = profile.AsFallible(sim)
	if s.cfg.Faults != nil {
		src = s.faultSource(li.lutKey, sim)
	}
	if s.breakers != nil {
		src = resilience.GuardSource(s.breakers, li.platform, src)
	}
	return src
}

// canaryPolicy mirrors profileJob's robust-policy selection so canary
// estimates aggregate exactly like the baselines they are compared to.
func (s *Server) canaryPolicy() *profile.Robust {
	robust := s.cfg.Robust
	if s.cfg.Faults != nil && robust == nil {
		robust = profile.DefaultRobust()
	}
	return robust
}

// canaryEntry is one (layer, primitive) cell of a LUT's full candidate
// space — dropped candidates included, so canaries double as recovery
// probes for entries a breaker fast-failed out of the table.
type canaryEntry struct {
	layer int
	prim  *primitives.Primitive
}

func canaryEntries(li *lutInfo) []canaryEntry {
	var out []canaryEntry
	for i := 1; i < li.net.Len(); i++ {
		for _, p := range primitives.Candidates(li.net.Layers[i], li.mode) {
			out = append(out, canaryEntry{layer: i, prim: p})
		}
	}
	return out
}

// CanaryTick runs one canary round: for every registered LUT, a
// deterministic rotating subset of its (layer, primitive) entries is
// re-measured through the robust policy and the breaker-guarded
// source, fresh estimates are compared to the stored baselines inside
// the MAD-scaled drift band, and confirmed-drifted (platform, library)
// pairs are quarantined — their tables evicted from the single-flight
// cache and their dependent plans handed to the self-healing
// re-optimizer. The schedule is a pure function of (seed, per-LUT
// round counter); no wall clock is consulted.
func (s *Server) CanaryTick(ctx context.Context) health.TickStats {
	var st health.TickStats
	s.lutMu.Lock()
	infos := make([]*lutInfo, 0, len(s.luts))
	for _, li := range s.luts {
		infos = append(infos, li)
	}
	s.lutMu.Unlock()
	sort.Slice(infos, func(a, b int) bool { return infos[a].lutKey < infos[b].lutKey })

	type pair struct{ plat, lib string }
	driftedBy := map[pair]int{}
	cleanSeen := map[pair]bool{}
	for _, li := range infos {
		s.lutMu.Lock()
		li.round++
		round := li.round
		s.lutMu.Unlock()
		entries := canaryEntries(li)
		idxs := health.CanaryIndices(s.hcfg.Seed, round, len(entries), s.hcfg.Size())
		src := s.canarySource(li)
		pol := s.canaryPolicy()
		for _, ix := range idxs {
			if ctx.Err() != nil {
				return st
			}
			e := entries[ix]
			st.Measured++
			s.canaryMeasured.Add(1)
			lib := e.prim.Lib.String()
			base := li.tab.Time(e.layer, e.prim.Idx)
			fresh, err := profile.RemeasureSample(ctx, src, pol, e.layer, e.prim, li.samples)
			if err != nil {
				// Breaker fast-fail or persistent fault: the entry is
				// still unmeasurable; nothing to compare.
				continue
			}
			if math.IsInf(base, 1) {
				// Recovery canary: a dropped entry measured successfully
				// again — its breaker just saw a successful probe, and
				// evictBreakerDegraded below re-profiles the table once
				// the breaker closes.
				st.Recovered++
				continue
			}
			fp, ok := li.fpByLib[lib]
			if !ok {
				continue
			}
			p := pair{li.platform, lib}
			if s.hcfg.Drifted(fresh, base, fp.MADSec) {
				st.Drifted++
				s.driftedEntries.Add(1)
				driftedBy[p]++
			} else {
				cleanSeen[p] = true
			}
		}
	}

	// Fold observations into the state machine in deterministic order.
	pairs := make([]pair, 0, len(driftedBy))
	for p := range driftedBy {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].plat != pairs[b].plat {
			return pairs[a].plat < pairs[b].plat
		}
		return pairs[a].lib < pairs[b].lib
	})
	for _, p := range pairs {
		if s.monitor.NoteDrift(p.plat, p.lib, driftedBy[p]) {
			st.Quarantined++
			s.quarantine(p.plat, p.lib)
		}
	}
	cleans := make([]pair, 0, len(cleanSeen))
	for p := range cleanSeen {
		if driftedBy[p] == 0 {
			cleans = append(cleans, p)
		}
	}
	sort.Slice(cleans, func(a, b int) bool {
		if cleans[a].plat != cleans[b].plat {
			return cleans[a].plat < cleans[b].plat
		}
		return cleans[a].lib < cleans[b].lib
	})
	for _, p := range cleans {
		s.monitor.NoteClean(p.plat, p.lib)
	}

	s.evictBreakerDegraded()
	if !s.hcfg.NoHeal {
		s.healStale()
	}
	s.canaryRounds.Add(1)
	return st
}

// quarantine applies a confirmed (platform, library) quarantine: every
// registered LUT of the platform that measured the library is marked
// stale and evicted from the single-flight cache, so the next build
// (a heal job's, or any user request's) re-profiles.
func (s *Server) quarantine(plat, lib string) {
	s.quarantines.Add(1)
	s.lutMu.Lock()
	for _, li := range s.luts {
		if li.platform != plat {
			continue
		}
		if _, ok := li.fpByLib[lib]; !ok {
			continue
		}
		li.staleLibs[lib] = true
		if s.flight.Evict(li.lutKey) {
			s.lutEvicted.Add(1)
		}
	}
	s.lutMu.Unlock()
}

// evictBreakerDegraded evicts cached tables whose candidates were
// dropped by breaker fast-fails once every breaker of their platform
// has closed again: the backend healed, so a degraded table must not
// be served forever. The evicted tables' plans go through the same
// self-healing path as drift quarantine.
func (s *Server) evictBreakerDegraded() {
	if s.breakers == nil {
		return
	}
	var snap []resilience.BreakerStatus
	healthy := func(plat string) bool {
		if snap == nil {
			snap = s.breakers.Snapshot()
		}
		for _, b := range snap {
			if b.Platform == plat && b.State != resilience.Closed {
				return false
			}
		}
		return true
	}
	s.lutMu.Lock()
	for _, li := range s.luts {
		if !li.fastFails || li.breakerStale {
			continue
		}
		if !healthy(li.platform) {
			continue
		}
		li.breakerStale = true
		if s.flight.Evict(li.lutKey) {
			s.lutEvicted.Add(1)
		}
		s.degradedEvicted.Add(1)
	}
	s.lutMu.Unlock()
}

// healStale enqueues a background re-optimization for every cached
// plan whose LUT is stale, deduped through the normal coalescing map
// and bounded by the admission queue (a full queue defers the heal to
// the next canary tick rather than blocking it).
func (s *Server) healStale() int {
	type cand struct {
		spec *jobSpec
		key  string
	}
	var cands []cand
	s.lutMu.Lock()
	for _, li := range s.luts {
		if !li.stale() {
			continue
		}
		for _, pk := range s.planIndex[li.lutKey] {
			if sp, err := specFromKey(pk); err == nil {
				cands = append(cands, cand{spec: sp, key: pk})
			}
		}
	}
	s.lutMu.Unlock()
	sort.Slice(cands, func(a, b int) bool { return cands[a].key < cands[b].key })
	enqueued := 0
	for _, c := range cands {
		if s.enqueueHeal(c.spec) {
			enqueued++
			s.lutMu.Lock()
			s.healPending[c.spec.Platform]++
			s.lutMu.Unlock()
		}
	}
	return enqueued
}

// HealNow synchronously enqueues heal jobs for every stale plan,
// regardless of -no-heal — the explicit-heal lever (tests and
// operators drive it; the canary loop calls the same machinery).
// Returns how many jobs were enqueued.
func (s *Server) HealNow() int { return s.healStale() }

// enqueueHeal admits one revalidation job: pinned (no waiters — the
// server itself wants the result), deduped against any in-flight job
// for the same key (a live user job produces the same fresh plan), and
// dropped — not blocked on — when the queue is full or the server is
// draining.
func (s *Server) enqueueHeal(spec *jobSpec) bool {
	key := spec.key()
	s.mu.Lock()
	if s.draining || s.byKey[key] != nil {
		s.mu.Unlock()
		return false
	}
	j := newJob(s.newID(), spec)
	j.revalidate = true
	j.pinned = true
	j.arm(s.baseCtx, 0)
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		j.release()
		s.healsDeferred.Add(1)
		return false
	}
	s.jobs[j.id] = j
	s.byKey[key] = j
	s.queuedN.Add(1)
	s.healsEnqueued.Add(1)
	s.mu.Unlock()
	return true
}

// healDone is called when a revalidation job reaches any terminal
// state: the platform's outstanding-heal count drops, and once it
// reaches zero every quarantined library with no remaining stale LUT
// is marked healed (or rolled-back when any heal kept its parent).
func (s *Server) healDone(spec *jobSpec, rolledBack bool) {
	plat := spec.Platform
	s.lutMu.Lock()
	defer s.lutMu.Unlock()
	if rolledBack {
		s.healRolled[plat] = true
	}
	if n := s.healPending[plat]; n > 1 {
		s.healPending[plat] = n - 1
	} else {
		delete(s.healPending, plat)
	}
	s.maybeMarkHealedLocked(plat)
}

// maybeMarkHealedLocked resolves a platform's quarantines once no heal
// is outstanding: libraries whose every registered LUT is fresh again
// transition to healed/rolled-back. Callers hold lutMu.
func (s *Server) maybeMarkHealedLocked(plat string) {
	if s.healPending[plat] > 0 {
		return
	}
	libs := s.monitor.QuarantinedLibs(plat)
	if len(libs) == 0 {
		return
	}
	remaining := false
	for _, lib := range libs {
		stillStale := false
		for _, li := range s.luts {
			if li.platform == plat && li.staleLibs[lib] {
				stillStale = true
				break
			}
		}
		if stillStale {
			remaining = true
			continue
		}
		s.monitor.MarkHealed(plat, lib, s.healRolled[plat])
		s.healedPairs.Add(1)
	}
	if !remaining {
		delete(s.healRolled, plat)
	}
}

// replayAssignment re-prices a stored plan's assignment on a fresh
// table: the rollback check's input. ok is false when the payload does
// not parse, the assignment no longer fits the table (layer count or
// candidate sets changed), or it prices to a non-finite total.
func replayAssignment(payload []byte, tab *lut.Table) ([]primitives.ID, float64, bool) {
	var pr PlanResponse
	if json.Unmarshal(payload, &pr) != nil {
		return nil, 0, false
	}
	if len(pr.Assignment) != tab.NumLayers() {
		return nil, 0, false
	}
	ids := make([]primitives.ID, len(pr.Assignment))
	for i, v := range pr.Assignment {
		id := primitives.ID(v)
		ok := false
		for _, c := range tab.Candidates(i) {
			if c == id {
				ok = true
				break
			}
		}
		if !ok {
			return nil, 0, false
		}
		ids[i] = id
	}
	t := tab.TotalTime(ids)
	if math.IsInf(t, 0) || math.IsNaN(t) {
		return nil, 0, false
	}
	return ids, t, true
}

// notePlan records a plan's health metadata and indexes it under its
// profiling key so quarantine can find the plans a stale LUT priced.
func (s *Server) notePlan(key string, spec *jobSpec, meta planMeta) {
	s.planMu.Lock()
	s.planMetas[key] = meta
	s.planMu.Unlock()
	lk := spec.lutKey()
	s.lutMu.Lock()
	found := false
	for _, k := range s.planIndex[lk] {
		if k == key {
			found = true
			break
		}
	}
	if !found {
		s.planIndex[lk] = append(s.planIndex[lk], key)
	}
	s.lutMu.Unlock()
}

// planMetaFor returns the recorded health metadata for a plan key
// (zero meta for plans stored before the health subsystem existed).
func (s *Server) planMetaFor(key string) planMeta {
	s.planMu.Lock()
	defer s.planMu.Unlock()
	return s.planMetas[key]
}

// cachedResponse wraps a cache-served plan in its health envelope:
// plan_epoch, age (profile epochs the plan's LUT has advanced since it
// was optimized), and revalidating — set while the plan's LUT is
// quarantined or breaker-stale, while its platform's heals are still
// in flight, or when the plan's age passed -plan-ttl. The plan bytes
// themselves are untouched, so byte-identity guarantees hold.
func (s *Server) cachedResponse(spec *jobSpec, key string, payload json.RawMessage) OptimizeResponse {
	resp := OptimizeResponse{State: StateDone, Cached: true, Plan: payload}
	meta := s.planMetaFor(key)
	resp.PlanEpoch = meta.Epoch
	stale, lutEpoch, ok := s.lutStateFor(spec.lutKey())
	if !ok {
		return resp
	}
	age := lutEpoch - meta.Epoch
	if age < 0 {
		age = 0
	}
	resp.Age = age
	s.lutMu.Lock()
	healing := s.healPending[spec.Platform] > 0
	s.lutMu.Unlock()
	ttl := s.hcfg.PlanTTL
	if stale || (age > 0 && healing) || (ttl > 0 && age >= ttl) {
		resp.Revalidating = true
		s.revalServed.Add(1)
	}
	return resp
}

// canaryLoop drives CanaryTick at the configured wall-clock cadence.
// The interval only schedules work; every health decision inside the
// tick is epoch-based.
func (s *Server) canaryLoop(d time.Duration) {
	t := time.NewTicker(d)
	defer t.Stop()
	for {
		select {
		case <-s.canaryStop:
			return
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			s.CanaryTick(s.baseCtx)
		}
	}
}
