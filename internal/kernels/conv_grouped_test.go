package kernels

import (
	"math/rand"
	"testing"

	"repro/internal/gemm"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// groupedRef computes a grouped conv as a dense conv with a
// block-diagonal filter — the ground truth for the grouped kernels.
func groupedRef(in *tensor.Tensor, w, bias []float32, p nn.ConvParams) *tensor.Tensor {
	s := in.Shape()
	g := p.GroupCount()
	inPerG, outPerG := s.C/g, p.OutChannels/g
	kArea := p.KernelH * p.KernelW
	dense := make([]float32, p.OutChannels*s.C*kArea)
	for grp := 0; grp < g; grp++ {
		for ocLocal := 0; ocLocal < outPerG; ocLocal++ {
			oc := grp*outPerG + ocLocal
			for cLocal := 0; cLocal < inPerG; cLocal++ {
				c := grp*inPerG + cLocal
				src := w[(oc*inPerG+cLocal)*kArea : (oc*inPerG+cLocal+1)*kArea]
				dst := dense[(oc*s.C+c)*kArea : (oc*s.C+c+1)*kArea]
				copy(dst, src)
			}
		}
	}
	dp := p
	dp.Groups = 1
	return ConvDirect(in, dense, bias, dp)
}

func TestGroupedConvMatchesBlockDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, g := range []int{2, 4} {
		in := tensor.New(tensor.Shape{N: 1, C: 8, H: 9, W: 9}, tensor.NCHW)
		in.FillRandom(rng, 1)
		p := nn.ConvParams{OutChannels: 12, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: g}
		w := make([]float32, 12*(8/g)*9)
		for i := range w {
			w[i] = rng.Float32()*2 - 1
		}
		bias := make([]float32, 12)
		for i := range bias {
			bias[i] = rng.Float32()
		}
		ref := groupedRef(in, w, bias, p)
		direct := ConvGroupedDirect(in, w, bias, p)
		if d := tensor.MaxAbsDiff(ref, direct); d > convTol {
			t.Errorf("groups=%d: direct max diff %g", g, d)
		}
		lowered := ConvGroupedIm2col(in, w, bias, p, gemm.Blocked)
		if d := tensor.MaxAbsDiff(ref, lowered); d > convTol {
			t.Errorf("groups=%d: im2col max diff %g", g, d)
		}
	}
}

func TestGroupedConvReducesToUngrouped(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	in := tensor.New(tensor.Shape{N: 1, C: 4, H: 6, W: 6}, tensor.NCHW)
	in.FillRandom(rng, 1)
	p := nn.ConvParams{OutChannels: 6, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 1}
	w := make([]float32, 6*4*9)
	for i := range w {
		w[i] = rng.Float32()
	}
	bias := make([]float32, 6)
	a := ConvGroupedDirect(in, w, bias, p)
	b := ConvDirect(in, w, bias, p)
	if d := tensor.MaxAbsDiff(a, b); d != 0 {
		t.Errorf("groups=1 should be identical to ConvDirect, diff %g", d)
	}
}

func TestGroupedConvStride(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	in := tensor.New(tensor.Shape{N: 1, C: 6, H: 11, W: 11}, tensor.NCHW)
	in.FillRandom(rng, 1)
	p := nn.ConvParams{OutChannels: 6, KernelH: 5, KernelW: 5, StrideH: 2, StrideW: 2, PadH: 2, PadW: 2, Groups: 3}
	w := make([]float32, 6*2*25)
	for i := range w {
		w[i] = rng.Float32()*2 - 1
	}
	bias := make([]float32, 6)
	ref := groupedRef(in, w, bias, p)
	if d := tensor.MaxAbsDiff(ref, ConvGroupedDirect(in, w, bias, p)); d > convTol {
		t.Errorf("strided grouped direct diff %g", d)
	}
	if d := tensor.MaxAbsDiff(ref, ConvGroupedIm2col(in, w, bias, p, gemm.Naive)); d > convTol {
		t.Errorf("strided grouped im2col diff %g", d)
	}
}

func TestGroupedConvBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("groups not dividing channels should panic")
		}
	}()
	in := tensor.New(tensor.Shape{N: 1, C: 5, H: 4, W: 4}, tensor.NCHW)
	p := nn.ConvParams{OutChannels: 4, KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1, Groups: 2}
	ConvGroupedDirect(in, make([]float32, 10), make([]float32, 4), p)
}

func TestIsGrouped(t *testing.T) {
	if IsGrouped(nn.ConvParams{Groups: 1}) || IsGrouped(nn.ConvParams{}) {
		t.Error("groups <= 1 should not be grouped")
	}
	if !IsGrouped(nn.ConvParams{Groups: 2}) {
		t.Error("groups = 2 should be grouped")
	}
}
