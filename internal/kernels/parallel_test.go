package kernels

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gemm"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// tensorsBitEqual reports whether two tensors carry identical IEEE-754
// bits in the same layout.
func tensorsBitEqual(a, b *tensor.Tensor) bool {
	if a.Layout() != b.Layout() || a.Shape() != b.Shape() {
		return false
	}
	da, db := a.Data(), b.Data()
	for i := range da {
		if math.Float32bits(da[i]) != math.Float32bits(db[i]) {
			return false
		}
	}
	return true
}

var parWorkerCounts = []int{2, 3, 4, 8, 64}

// TestParKernelsBitIdenticalAcrossWorkers pins the tentpole contract
// for every parallel conv kernel: any worker count produces output
// byte-for-byte identical to the sequential (workers=1) path, on every
// geometry in the shared table.
func TestParKernelsBitIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	par := gemm.Packed
	kernelsUnderTest := []struct {
		name string
		run  func(in *tensor.Tensor, w, b []float32, p nn.ConvParams, workers int) *tensor.Tensor
	}{
		{"direct", ConvDirectPar},
		{"winograd3x3", func(in *tensor.Tensor, w, b []float32, p nn.ConvParams, workers int) *tensor.Tensor {
			if p.KernelH != 3 || p.KernelW != 3 || p.StrideH != 1 || p.StrideW != 1 {
				return nil
			}
			return ConvWinogradPar(in, w, b, p, workers)
		}},
		{"fft", func(in *tensor.Tensor, w, b []float32, p nn.ConvParams, workers int) *tensor.Tensor {
			if p.StrideH != 1 || p.StrideW != 1 {
				return nil
			}
			return ConvFFTPar(in, w, b, p, workers)
		}},
		{"im2col", func(in *tensor.Tensor, w, b []float32, p nn.ConvParams, workers int) *tensor.Tensor {
			return ConvIm2colPar(in, w, b, p, par, workers)
		}},
		{"im2row", func(in *tensor.Tensor, w, b []float32, p nn.ConvParams, workers int) *tensor.Tensor {
			return ConvIm2rowPar(in, w, b, p, par, workers)
		}},
		{"kn2row", func(in *tensor.Tensor, w, b []float32, p nn.ConvParams, workers int) *tensor.Tensor {
			return ConvKn2rowPar(in, w, b, p, par, workers)
		}},
		{"nhwc", func(in *tensor.Tensor, w, b []float32, p nn.ConvParams, workers int) *tensor.Tensor {
			return ConvDirectNHWCPar(in.ToLayout(tensor.NHWC), w, b, p, workers)
		}},
	}
	for _, g := range convGeometries {
		x, w, b := randConv(rng, g.in, g.p)
		for _, k := range kernelsUnderTest {
			seq := k.run(x, w, b, g.p, 1)
			if seq == nil {
				continue // kernel does not support this geometry
			}
			for _, workers := range parWorkerCounts {
				got := k.run(x, w, b, g.p, workers)
				if !tensorsBitEqual(seq, got) {
					t.Errorf("%s/%s workers=%d: output not bit-identical to sequential", g.name, k.name, workers)
				}
			}
		}
	}
}

// TestParKernelsMatchSequentialExports checks the workers=1 wrappers
// really are the same code path: exported sequential kernels and their
// Par(…, 1) forms agree bit-for-bit.
func TestParKernelsMatchSequentialExports(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	g := convGeometries[0]
	x, w, b := randConv(rng, g.in, g.p)
	if !tensorsBitEqual(ConvDirect(x, w, b, g.p), ConvDirectPar(x, w, b, g.p, 1)) {
		t.Error("ConvDirect != ConvDirectPar(1)")
	}
	if !tensorsBitEqual(ConvWinograd(x, w, b, g.p), ConvWinogradPar(x, w, b, g.p, 1)) {
		t.Error("ConvWinograd != ConvWinogradPar(1)")
	}
	if !tensorsBitEqual(ConvFFT(x, w, b, g.p), ConvFFTPar(x, w, b, g.p, 1)) {
		t.Error("ConvFFT != ConvFFTPar(1)")
	}
}

// TestDepthwiseParBitIdentical covers the depth-wise kernels, which
// need channel-count == in.C weights rather than the dense layout.
func TestDepthwiseParBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	in := tensor.Shape{N: 2, C: 5, H: 9, W: 7}
	p := nn.ConvParams{OutChannels: 5, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	x := tensor.New(in, tensor.NCHW)
	x.FillRandom(rng, 1)
	w := make([]float32, in.C*p.KernelH*p.KernelW)
	for i := range w {
		w[i] = rng.Float32()*2 - 1
	}
	b := make([]float32, in.C)
	for i := range b {
		b[i] = rng.Float32()
	}
	seq := DepthwiseDirectPar(x, w, b, p, 1)
	xh := x.ToLayout(tensor.NHWC)
	seqH := DepthwiseNHWCPar(xh, w, b, p, 1)
	for _, workers := range parWorkerCounts {
		if !tensorsBitEqual(seq, DepthwiseDirectPar(x, w, b, p, workers)) {
			t.Errorf("DepthwiseDirectPar workers=%d: not bit-identical", workers)
		}
		if !tensorsBitEqual(seqH, DepthwiseNHWCPar(xh, w, b, p, workers)) {
			t.Errorf("DepthwiseNHWCPar workers=%d: not bit-identical", workers)
		}
	}
}

// TestGroupedParBitIdentical covers the grouped kernels (AlexNet-style
// two-group layers).
func TestGroupedParBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	in := tensor.Shape{N: 1, C: 6, H: 8, W: 8}
	p := nn.ConvParams{OutChannels: 4, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 2}
	x := tensor.New(in, tensor.NCHW)
	x.FillRandom(rng, 1)
	w := make([]float32, p.OutChannels*(in.C/2)*9)
	for i := range w {
		w[i] = rng.Float32()*2 - 1
	}
	b := make([]float32, p.OutChannels)
	for i := range b {
		b[i] = rng.Float32()
	}
	seqD := ConvGroupedDirectPar(x, w, b, p, 1)
	seqI := ConvGroupedIm2colPar(x, w, b, p, gemm.Packed, 1)
	for _, workers := range parWorkerCounts {
		if !tensorsBitEqual(seqD, ConvGroupedDirectPar(x, w, b, p, workers)) {
			t.Errorf("ConvGroupedDirectPar workers=%d: not bit-identical", workers)
		}
		if !tensorsBitEqual(seqI, ConvGroupedIm2colPar(x, w, b, p, gemm.Packed, workers)) {
			t.Errorf("ConvGroupedIm2colPar workers=%d: not bit-identical", workers)
		}
	}
}

// TestConvPackedGemmMatchesDirect extends the kernels-match-direct
// property to the packed GEMM backend feeding the lowering kernels.
func TestConvPackedGemmMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, g := range convGeometries {
		x, w, b := randConv(rng, g.in, g.p)
		ref := ConvDirect(x, w, b, g.p)
		for _, workers := range []int{1, 4} {
			got := ConvIm2colPar(x, w, b, g.p, func(m, n, k int, a, bb, c []float32) {
				gemm.Parallel(m, n, k, a, bb, c, workers)
			}, workers)
			rd, gd := ref.Data(), got.Data()
			for i := range rd {
				if d := math.Abs(float64(rd[i] - gd[i])); d > convTol {
					t.Fatalf("%s workers=%d: im2col+packed differs from direct by %g at %d", g.name, workers, d, i)
				}
			}
		}
	}
}
