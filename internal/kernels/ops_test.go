package kernels

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestMaxPoolKnown(t *testing.T) {
	in := tensor.NewFrom(tensor.Shape{N: 1, C: 1, H: 4, W: 4}, tensor.NCHW, []float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	})
	p := nn.ConvParams{KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2}
	out := MaxPool(in, p)
	want := []float32{6, 8, 14, 16}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Errorf("out[%d] = %v, want %v", i, out.Data()[i], v)
		}
	}
}

func TestMaxPoolPaddingIgnored(t *testing.T) {
	// All-negative input with padding: padded zeros must not win.
	in := tensor.New(tensor.Shape{N: 1, C: 1, H: 2, W: 2}, tensor.NCHW)
	in.Fill(-5)
	p := nn.ConvParams{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	out := MaxPool(in, p)
	for i, v := range out.Data() {
		if v != -5 {
			t.Errorf("out[%d] = %v, want -5 (padding leaked into max)", i, v)
		}
	}
}

func TestAvgPoolKnown(t *testing.T) {
	in := tensor.NewFrom(tensor.Shape{N: 1, C: 1, H: 2, W: 2}, tensor.NCHW, []float32{1, 2, 3, 4})
	p := nn.ConvParams{KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2}
	out := AvgPool(in, p)
	if out.Data()[0] != 2.5 {
		t.Errorf("avg = %v, want 2.5", out.Data()[0])
	}
}

func TestReLU(t *testing.T) {
	in := tensor.NewFrom(tensor.Shape{N: 1, C: 1, H: 1, W: 4}, tensor.NCHW, []float32{-1, 0, 2, -3})
	out := ReLU(in)
	want := []float32{0, 0, 2, 0}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Errorf("relu[%d] = %v, want %v", i, out.Data()[i], v)
		}
	}
	// Input untouched.
	if in.Data()[0] != -1 {
		t.Error("ReLU mutated its input")
	}
}

func TestBatchNorm(t *testing.T) {
	in := tensor.NewFrom(tensor.Shape{N: 1, C: 2, H: 1, W: 2}, tensor.NCHW, []float32{1, 2, 3, 4})
	out := BatchNorm(in, []float32{2, 10}, []float32{1, -1})
	want := []float32{3, 5, 29, 39}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Errorf("bn[%d] = %v, want %v", i, out.Data()[i], v)
		}
	}
}

func TestLRNIdentityForTinyActivations(t *testing.T) {
	// With alpha*sq tiny, denominator ~1 so output ~input.
	in := tensor.New(tensor.Shape{N: 1, C: 5, H: 2, W: 2}, tensor.NCHW)
	in.Fill(0.01)
	out := LRN(in, 5)
	if d := tensor.MaxAbsDiff(in, out); d > 1e-5 {
		t.Errorf("LRN perturbation %g too large for tiny input", d)
	}
}

func TestLRNShrinksLargeActivations(t *testing.T) {
	in := tensor.New(tensor.Shape{N: 1, C: 5, H: 1, W: 1}, tensor.NCHW)
	in.Fill(100)
	out := LRN(in, 5)
	for c := 0; c < 5; c++ {
		if out.At(0, c, 0, 0) >= 100 {
			t.Errorf("LRN should shrink large activations, got %v", out.At(0, c, 0, 0))
		}
	}
}

func TestSoftmax(t *testing.T) {
	in := tensor.NewFrom(tensor.Shape{N: 1, C: 3, H: 1, W: 1}, tensor.NCHW, []float32{1, 2, 3})
	out := Softmax(in)
	var sum float64
	for c := 0; c < 3; c++ {
		v := float64(out.At(0, c, 0, 0))
		if v <= 0 || v >= 1 {
			t.Errorf("softmax[%d] = %v outside (0,1)", c, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Errorf("softmax sum = %v", sum)
	}
	if !(out.At(0, 2, 0, 0) > out.At(0, 1, 0, 0) && out.At(0, 1, 0, 0) > out.At(0, 0, 0, 0)) {
		t.Error("softmax should preserve ordering")
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	in := tensor.NewFrom(tensor.Shape{N: 1, C: 2, H: 1, W: 1}, tensor.NCHW, []float32{1000, 1001})
	out := Softmax(in)
	for c := 0; c < 2; c++ {
		if v := out.At(0, c, 0, 0); math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("softmax[%d] = %v not finite", c, v)
		}
	}
}

func TestConcat(t *testing.T) {
	a := tensor.New(tensor.Shape{N: 1, C: 2, H: 2, W: 2}, tensor.NCHW)
	a.Fill(1)
	b := tensor.New(tensor.Shape{N: 1, C: 3, H: 2, W: 2}, tensor.NCHW)
	b.Fill(2)
	out := Concat([]*tensor.Tensor{a, b})
	if out.Shape().C != 5 {
		t.Fatalf("concat channels = %d", out.Shape().C)
	}
	if out.At(0, 0, 0, 0) != 1 || out.At(0, 4, 1, 1) != 2 {
		t.Error("concat values misplaced")
	}
}

func TestConcatRejectsMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched concat should panic")
		}
	}()
	a := tensor.New(tensor.Shape{N: 1, C: 1, H: 2, W: 2}, tensor.NCHW)
	b := tensor.New(tensor.Shape{N: 1, C: 1, H: 3, W: 2}, tensor.NCHW)
	Concat([]*tensor.Tensor{a, b})
}

func TestEltwiseAdd(t *testing.T) {
	a := tensor.New(tensor.Shape{N: 1, C: 1, H: 1, W: 3}, tensor.NCHW)
	a.Fill(1)
	b := tensor.New(tensor.Shape{N: 1, C: 1, H: 1, W: 3}, tensor.NCHW)
	b.Fill(2)
	out := EltwiseAdd(a, b)
	for _, v := range out.Data() {
		if v != 3 {
			t.Errorf("add = %v, want 3", v)
		}
	}
}

func TestEltwiseAddCrossLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := tensor.New(tensor.Shape{N: 1, C: 3, H: 4, W: 4}, tensor.NCHW)
	a.FillRandom(rng, 1)
	b := tensor.New(tensor.Shape{N: 1, C: 3, H: 4, W: 4}, tensor.NCHW)
	b.FillRandom(rng, 1)
	ref := EltwiseAdd(a, b)
	got := EltwiseAdd(a, b.ToLayout(tensor.NHWC))
	if d := tensor.MaxAbsDiff(ref, got); d != 0 {
		t.Errorf("cross-layout add differs by %g", d)
	}
}

func TestFlatten(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := tensor.New(tensor.Shape{N: 1, C: 2, H: 3, W: 4}, tensor.NCHW)
	in.FillRandom(rng, 1)
	out := Flatten(in)
	if !out.Shape().Equal(tensor.Shape{N: 1, C: 24, H: 1, W: 1}) {
		t.Fatalf("flatten shape = %v", out.Shape())
	}
	// Flatten of an NHWC tensor must produce canonical NCHW order.
	out2 := Flatten(in.ToLayout(tensor.NHWC))
	if d := tensor.MaxAbsDiff(out, out2); d != 0 {
		t.Errorf("flatten layout dependence: diff %g", d)
	}
}

func TestFCGemvKnown(t *testing.T) {
	in := tensor.NewFrom(tensor.Shape{N: 1, C: 2, H: 1, W: 1}, tensor.NCHW, []float32{1, 2})
	w := []float32{1, 0, 0, 1, 1, 1} // 3x2
	b := []float32{10, 20, 30}
	out := FCGemv(in, w, b, 3)
	want := []float32{11, 22, 33}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Errorf("fc[%d] = %v, want %v", i, out.Data()[i], v)
		}
	}
}

func TestGlobalAvgPoolEqualsMean(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := tensor.New(tensor.Shape{N: 1, C: 2, H: 5, W: 5}, tensor.NCHW)
	in.FillRandom(rng, 1)
	p := nn.ConvParams{KernelH: 5, KernelW: 5, StrideH: 5, StrideW: 5}
	out := AvgPool(in, p)
	for c := 0; c < 2; c++ {
		var sum float32
		for h := 0; h < 5; h++ {
			for w := 0; w < 5; w++ {
				sum += in.At(0, c, h, w)
			}
		}
		want := sum / 25
		if got := out.At(0, c, 0, 0); math.Abs(float64(got-want)) > 1e-5 {
			t.Errorf("global avg c%d = %v, want %v", c, got, want)
		}
	}
}
