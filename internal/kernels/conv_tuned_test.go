package kernels

import (
	"math/rand"
	"testing"

	"repro/internal/gemm"
	"repro/internal/tensor"
)

func bitEqualTensors(a, b *tensor.Tensor) bool {
	da, db := a.Data(), b.Data()
	if len(da) != len(db) {
		return false
	}
	for i := range da {
		if da[i] != db[i] {
			return false
		}
	}
	return true
}

// TestConvTunedZeroConfigBitIdentical pins the golden-safety contract:
// a zero-Block ConvTuned config is bit-identical to the default
// lowering paths at every Panel and Workers setting, because panel
// tiling only splits GEMM calls between output columns.
func TestConvTunedZeroConfigBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	par := func(m, n, k int, a, b, c []float32) { gemm.Parallel(m, n, k, a, b, c, 1) }
	for _, g := range convGeometries {
		x, w, b := randConv(rng, g.in, g.p)
		refCol := ConvIm2col(x, w, b, g.p, par)
		refRow := ConvIm2row(x, w, b, g.p, par)
		refKn := ConvKn2row(x, w, b, g.p, par)
		for _, panel := range []int{0, 1, 2, 3, 100} {
			for _, workers := range []int{1, 3} {
				cfg := ConvTuned{Panel: panel, Workers: workers}
				if got := ConvIm2colTuned(x, w, b, g.p, cfg); !bitEqualTensors(refCol, got) {
					t.Errorf("%s im2col panel=%d workers=%d: not bit-identical to default", g.name, panel, workers)
				}
				if got := ConvIm2rowTuned(x, w, b, g.p, cfg); !bitEqualTensors(refRow, got) {
					t.Errorf("%s im2row panel=%d workers=%d: not bit-identical to default", g.name, panel, workers)
				}
				if got := ConvKn2rowTuned(x, w, b, g.p, cfg); !bitEqualTensors(refKn, got) {
					t.Errorf("%s kn2row workers=%d: not bit-identical to default", g.name, workers)
				}
			}
		}
	}
}

// TestConvTunedBlockedMatchesDirect: blocked GEMM configs stay within
// float32 tolerance of the direct convolution on every geometry.
func TestConvTunedBlockedMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	cfgs := []ConvTuned{
		{Block: gemm.BlockConfig{KC: 8}},
		{Panel: 2, Block: gemm.BlockConfig{KC: 8, NC: 16}},
		{Panel: 3, Workers: 2, Block: gemm.BlockConfig{NC: 8, Workers: 2}},
		{Panel: 1, Block: gemm.BlockConfig{Kernel: "go-4x8", KC: 16}},
	}
	for _, g := range convGeometries {
		x, w, b := randConv(rng, g.in, g.p)
		ref := ConvDirect(x, w, b, g.p)
		for i, cfg := range cfgs {
			for name, run := range map[string]func() *tensor.Tensor{
				"im2col": func() *tensor.Tensor { return ConvIm2colTuned(x, w, b, g.p, cfg) },
				"im2row": func() *tensor.Tensor { return ConvIm2rowTuned(x, w, b, g.p, cfg) },
				"kn2row": func() *tensor.Tensor { return ConvKn2rowTuned(x, w, b, g.p, cfg) },
			} {
				if d := tensor.MaxAbsDiff(ref, run()); d > convTol {
					t.Errorf("%s %s cfg#%d: max diff %g > %g", g.name, name, i, d, convTol)
				}
			}
		}
	}
}

// TestConvTunedWorkerInvariance: a tuned config (including blocked
// GEMMs) produces bit-identical output at any worker count — the
// contract that keeps tuner measurements valid for serving at a
// different fan-out.
func TestConvTunedWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	g := convGeometries[2] // strided 3x3 with padding
	x, w, b := randConv(rng, g.in, g.p)
	cfgs := []ConvTuned{
		{Panel: 2, Block: gemm.BlockConfig{KC: 8, NC: 8}},
		{Panel: 3, Block: gemm.BlockConfig{KC: 5}},
	}
	for i, base := range cfgs {
		base.Workers = 1
		refCol := ConvIm2colTuned(x, w, b, g.p, base)
		refRow := ConvIm2rowTuned(x, w, b, g.p, base)
		refKn := ConvKn2rowTuned(x, w, b, g.p, base)
		for _, workers := range []int{2, 4, 8} {
			cfg := base
			cfg.Workers = workers
			if got := ConvIm2colTuned(x, w, b, g.p, cfg); !bitEqualTensors(refCol, got) {
				t.Errorf("cfg#%d im2col workers=%d: not bit-identical to workers=1", i, workers)
			}
			if got := ConvIm2rowTuned(x, w, b, g.p, cfg); !bitEqualTensors(refRow, got) {
				t.Errorf("cfg#%d im2row workers=%d: not bit-identical to workers=1", i, workers)
			}
			if got := ConvKn2rowTuned(x, w, b, g.p, cfg); !bitEqualTensors(refKn, got) {
				t.Errorf("cfg#%d kn2row workers=%d: not bit-identical to workers=1", i, workers)
			}
		}
	}
}
