package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 16
	re := make([]float64, n)
	im := make([]float64, n)
	orig := make([]float64, n)
	for i := range re {
		re[i] = rng.Float64()*2 - 1
		orig[i] = re[i]
	}
	fft(re, im, false)
	fft(re, im, true)
	for i := range re {
		if math.Abs(re[i]-orig[i]) > 1e-9 || math.Abs(im[i]) > 1e-9 {
			t.Fatalf("round trip differs at %d: %v / %vi", i, re[i]-orig[i], im[i])
		}
	}
}

func TestFFTKnownValues(t *testing.T) {
	// FFT of an impulse is flat ones.
	re := []float64{1, 0, 0, 0}
	im := make([]float64, 4)
	fft(re, im, false)
	for i := range re {
		if math.Abs(re[i]-1) > 1e-12 || math.Abs(im[i]) > 1e-12 {
			t.Fatalf("impulse FFT[%d] = %v+%vi, want 1", i, re[i], im[i])
		}
	}
	// FFT of all-ones concentrates at DC.
	re2 := []float64{1, 1, 1, 1}
	im2 := make([]float64, 4)
	fft(re2, im2, false)
	if math.Abs(re2[0]-4) > 1e-12 {
		t.Errorf("DC = %v, want 4", re2[0])
	}
	for i := 1; i < 4; i++ {
		if math.Abs(re2[i]) > 1e-12 || math.Abs(im2[i]) > 1e-12 {
			t.Errorf("bin %d = %v+%vi, want 0", i, re2[i], im2[i])
		}
	}
}

func TestFFTRejectsNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two length should panic")
		}
	}()
	fft(make([]float64, 3), make([]float64, 3), false)
}

func TestFFT2DRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 8
	re := make([]float64, n*n)
	im := make([]float64, n*n)
	orig := make([]float64, n*n)
	for i := range re {
		re[i] = rng.Float64()
		orig[i] = re[i]
	}
	fft2D(re, im, n, false)
	fft2D(re, im, n, true)
	for i := range re {
		if math.Abs(re[i]-orig[i]) > 1e-9 {
			t.Fatalf("2D round trip differs at %d", i)
		}
	}
}

func TestConvFFTMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, g := range convGeometries {
		if g.p.StrideH != 1 || g.p.StrideW != 1 {
			continue
		}
		x, w, b := randConv(rng, g.in, g.p)
		ref := ConvDirect(x, w, b, g.p)
		got := ConvFFT(x, w, b, g.p)
		if d := tensor.MaxAbsDiff(ref, got); d > convTol {
			t.Errorf("%s: fft conv max diff %g", g.name, d)
		}
	}
}

func TestConvFFT5x5Inception(t *testing.T) {
	// The Inception 5x5 branch geometry — the case FFT is offered for.
	rng := rand.New(rand.NewSource(4))
	in := tensor.Shape{N: 1, C: 16, H: 14, W: 14}
	p := nn.ConvParams{OutChannels: 8, KernelH: 5, KernelW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2}
	x, w, b := randConv(rng, in, p)
	ref := ConvDirect(x, w, b, p)
	got := ConvFFT(x, w, b, p)
	if d := tensor.MaxAbsDiff(ref, got); d > convTol {
		t.Errorf("5x5 fft conv max diff %g", d)
	}
}

func TestConvFFTRejectsStride(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("stride-2 FFT conv should panic")
		}
	}()
	p := nn.ConvParams{OutChannels: 1, KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2}
	x, w, b := randConv(rand.New(rand.NewSource(1)), tensor.Shape{N: 1, C: 1, H: 8, W: 8}, p)
	ConvFFT(x, w, b, p)
}

func TestConvFFTProperty(t *testing.T) {
	f := func(ch, oc, k, hw uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		kernel := int(k%5) + 1
		size := kernel + int(hw%5)
		in := tensor.Shape{N: 1, C: int(ch%3) + 1, H: size, W: size}
		p := nn.ConvParams{
			OutChannels: int(oc%3) + 1,
			KernelH:     kernel, KernelW: kernel,
			StrideH: 1, StrideW: 1,
			PadH: int(k % 2), PadW: int(k % 2),
		}
		x, w, b := randConv(rng, in, p)
		return tensor.MaxAbsDiff(ConvDirect(x, w, b, p), ConvFFT(x, w, b, p)) <= convTol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
