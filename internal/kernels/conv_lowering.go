package kernels

import (
	"repro/internal/gemm"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Im2col lowers an NCHW input into the (C*KH*KW) x (OH*OW) patch
// matrix: each column holds one receptive field, each row one
// (channel, kernel-offset) pair. Out-of-bounds (padding) entries are
// zero. This is the classic Caffe/BLAS lowering.
func Im2col(in *tensor.Tensor, n int, p nn.ConvParams, oh, ow int) []float32 {
	return Im2colPar(in, n, p, oh, ow, 1)
}

// Im2colPar is Im2col with the columns partitioned into blocks across
// workers goroutines: column y*ow+x belongs to output row y, and each
// worker fills every matrix row for its own block of output rows. Every
// entry is a pure assignment into an exclusive column range, so the
// matrix is bit-identical at any worker count.
func Im2colPar(in *tensor.Tensor, n int, p nn.ConvParams, oh, ow, workers int) []float32 {
	s := in.Shape()
	rows := s.C * p.KernelH * p.KernelW
	cols := oh * ow
	m := make([]float32, rows*cols)
	parFor(oh, workers, func(y int) {
		row := 0
		for c := 0; c < s.C; c++ {
			for r := 0; r < p.KernelH; r++ {
				ih := y*p.StrideH + r - p.PadH
				for q := 0; q < p.KernelW; q++ {
					if ih >= 0 && ih < s.H {
						base := row*cols + y*ow
						for x := 0; x < ow; x++ {
							iw := x*p.StrideW + q - p.PadW
							if iw >= 0 && iw < s.W {
								m[base+x] = in.At(n, c, ih, iw)
							}
						}
					}
					row++
				}
			}
		}
	})
	return m
}

// Im2row lowers an NCHW input into the (OH*OW) x (C*KH*KW) patch
// matrix — the transpose orientation of Im2col, matching BLAS
// libraries that prefer the patches as rows.
func Im2row(in *tensor.Tensor, n int, p nn.ConvParams, oh, ow int) []float32 {
	return Im2rowPar(in, n, p, oh, ow, 1)
}

// Im2rowPar is Im2row with the patch rows partitioned by output row
// across workers goroutines; each patch is an exclusive slice, so the
// matrix is bit-identical at any worker count.
func Im2rowPar(in *tensor.Tensor, n int, p nn.ConvParams, oh, ow, workers int) []float32 {
	s := in.Shape()
	cols := s.C * p.KernelH * p.KernelW
	m := make([]float32, oh*ow*cols)
	parFor(oh, workers, func(y int) {
		patch := y * ow
		for x := 0; x < ow; x++ {
			base := patch * cols
			i := 0
			for c := 0; c < s.C; c++ {
				for r := 0; r < p.KernelH; r++ {
					ih := y*p.StrideH + r - p.PadH
					for q := 0; q < p.KernelW; q++ {
						iw := x*p.StrideW + q - p.PadW
						if ih >= 0 && ih < s.H && iw >= 0 && iw < s.W {
							m[base+i] = in.At(n, c, ih, iw)
						}
						i++
					}
				}
			}
			patch++
		}
	})
	return m
}

// Gemm is the matrix-multiply signature the lowering kernels accept, so
// the same code path serves the naive (ATLAS-like), blocked, and
// packed/parallel (tuned-BLAS-like) backends.
type Gemm func(m, n, k int, a, b, c []float32)

// ConvIm2col computes a dense convolution as W (OC x CKK) times the
// im2col matrix (CKK x OHOW), using the supplied GEMM.
func ConvIm2col(in *tensor.Tensor, w, bias []float32, p nn.ConvParams, mul Gemm) *tensor.Tensor {
	return ConvIm2colPar(in, w, bias, p, mul, 1)
}

// ConvIm2colPar is ConvIm2col with the im2col lowering parallelized
// across column blocks (Im2colPar); the GEMM parallelism is whatever
// mul provides. Results are bit-identical at any worker count.
func ConvIm2colPar(in *tensor.Tensor, w, bias []float32, p nn.ConvParams, mul Gemm, workers int) *tensor.Tensor {
	if in.Layout() != tensor.NCHW {
		panic("kernels: ConvIm2col requires NCHW input")
	}
	s := in.Shape()
	checkConvArgs(s, w, bias, p)
	out := tensor.New(convOutShape(s, p.OutChannels, p), tensor.NCHW)
	os := out.Shape()
	ckk := s.C * p.KernelH * p.KernelW
	spatial := os.H * os.W
	for n := 0; n < s.N; n++ {
		cols := Im2colPar(in, n, p, os.H, os.W, workers)
		res := make([]float32, p.OutChannels*spatial)
		for oc := 0; oc < p.OutChannels; oc++ {
			b := bias[oc]
			row := res[oc*spatial : (oc+1)*spatial]
			for i := range row {
				row[i] = b
			}
		}
		mul(p.OutChannels, spatial, ckk, w, cols, res)
		copy(out.Data()[n*os.C*spatial:], res)
	}
	return out
}

// ConvIm2row computes a dense convolution as the im2row matrix
// (OHOW x CKK) times W-transposed (CKK x OC), then transposes the
// result back into NCHW.
func ConvIm2row(in *tensor.Tensor, w, bias []float32, p nn.ConvParams, mul Gemm) *tensor.Tensor {
	return ConvIm2rowPar(in, w, bias, p, mul, 1)
}

// ConvIm2rowPar is ConvIm2row with the im2row lowering parallelized
// across patch-row blocks (Im2rowPar); results are bit-identical at any
// worker count.
func ConvIm2rowPar(in *tensor.Tensor, w, bias []float32, p nn.ConvParams, mul Gemm, workers int) *tensor.Tensor {
	if in.Layout() != tensor.NCHW {
		panic("kernels: ConvIm2row requires NCHW input")
	}
	s := in.Shape()
	checkConvArgs(s, w, bias, p)
	out := tensor.New(convOutShape(s, p.OutChannels, p), tensor.NCHW)
	os := out.Shape()
	ckk := s.C * p.KernelH * p.KernelW
	spatial := os.H * os.W
	wt := make([]float32, len(w))
	gemm.Transpose(p.OutChannels, ckk, w, wt)
	for n := 0; n < s.N; n++ {
		rows := Im2rowPar(in, n, p, os.H, os.W, workers)
		res := make([]float32, spatial*p.OutChannels) // (OHOW x OC)
		for i := 0; i < spatial; i++ {
			copy(res[i*p.OutChannels:(i+1)*p.OutChannels], bias)
		}
		mul(spatial, p.OutChannels, ckk, rows, wt, res)
		// Transpose (OHOW x OC) into the NCHW output plane.
		dst := out.Data()[n*os.C*spatial:]
		for i := 0; i < spatial; i++ {
			for oc := 0; oc < p.OutChannels; oc++ {
				dst[oc*spatial+i] = res[i*p.OutChannels+oc]
			}
		}
	}
	return out
}

// ConvKn2row computes a dense convolution as KH*KW rank-C GEMMs: for
// each kernel offset (r,q), the 1x1 sub-filter W[:, :, r, q] (OC x C)
// multiplies the correspondingly shifted input (C x OHOW) and
// accumulates into the output. The shifted view is gathered into a
// scratch buffer, which generalizes the textbook stride-1 kn2row to
// arbitrary stride and padding.
func ConvKn2row(in *tensor.Tensor, w, bias []float32, p nn.ConvParams, mul Gemm) *tensor.Tensor {
	return ConvKn2rowPar(in, w, bias, p, mul, 1)
}

// ConvKn2rowPar is ConvKn2row with the shifted-view gather parallelized
// across input channels (each channel writes an exclusive plane of the
// scratch buffer); the GEMM parallelism is whatever mul provides.
// Results are bit-identical at any worker count.
func ConvKn2rowPar(in *tensor.Tensor, w, bias []float32, p nn.ConvParams, mul Gemm, workers int) *tensor.Tensor {
	if in.Layout() != tensor.NCHW {
		panic("kernels: ConvKn2row requires NCHW input")
	}
	s := in.Shape()
	checkConvArgs(s, w, bias, p)
	out := tensor.New(convOutShape(s, p.OutChannels, p), tensor.NCHW)
	os := out.Shape()
	spatial := os.H * os.W
	kArea := p.KernelH * p.KernelW

	// Regroup OIHW weights into per-offset (r,q) OC x C blocks.
	sub := make([]float32, kArea*p.OutChannels*s.C)
	for oc := 0; oc < p.OutChannels; oc++ {
		for c := 0; c < s.C; c++ {
			for r := 0; r < p.KernelH; r++ {
				for q := 0; q < p.KernelW; q++ {
					off := r*p.KernelW + q
					sub[off*p.OutChannels*s.C+oc*s.C+c] = w[((oc*s.C+c)*p.KernelH+r)*p.KernelW+q]
				}
			}
		}
	}

	shift := make([]float32, s.C*spatial)
	for n := 0; n < s.N; n++ {
		res := make([]float32, p.OutChannels*spatial)
		for oc := 0; oc < p.OutChannels; oc++ {
			b := bias[oc]
			row := res[oc*spatial : (oc+1)*spatial]
			for i := range row {
				row[i] = b
			}
		}
		for r := 0; r < p.KernelH; r++ {
			for q := 0; q < p.KernelW; q++ {
				// Gather the shifted input view for offset (r,q).
				parFor(s.C, workers, func(c int) {
					base := c * spatial
					i := 0
					for y := 0; y < os.H; y++ {
						ih := y*p.StrideH + r - p.PadH
						for x := 0; x < os.W; x++ {
							iw := x*p.StrideW + q - p.PadW
							if ih >= 0 && ih < s.H && iw >= 0 && iw < s.W {
								shift[base+i] = in.At(n, c, ih, iw)
							} else {
								shift[base+i] = 0
							}
							i++
						}
					}
				})
				off := r*p.KernelW + q
				mul(p.OutChannels, spatial, s.C, sub[off*p.OutChannels*s.C:(off+1)*p.OutChannels*s.C], shift, res)
			}
		}
		copy(out.Data()[n*os.C*spatial:], res)
	}
	return out
}
