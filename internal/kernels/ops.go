package kernels

import (
	"fmt"
	"math"

	"repro/internal/gemm"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// FCGemv computes a fully-connected layer as a dense GEMV (the
// cuBLAS-style batch-1 path). Weights are row-major (OutUnits x In).
func FCGemv(in *tensor.Tensor, w, bias []float32, outUnits int) *tensor.Tensor {
	s := in.Shape()
	inWidth := s.C * s.H * s.W
	if len(w) != outUnits*inWidth {
		panic(fmt.Sprintf("kernels: FC weights have %d elements, need %d", len(w), outUnits*inWidth))
	}
	if len(bias) != outUnits {
		panic("kernels: FC bias size mismatch")
	}
	out := tensor.New(tensor.Shape{N: s.N, C: outUnits, H: 1, W: 1}, tensor.NCHW)
	for n := 0; n < s.N; n++ {
		x := in.Data()[n*inWidth : (n+1)*inWidth]
		y := out.Data()[n*outUnits : (n+1)*outUnits]
		copy(y, bias)
		gemm.Gemv(outUnits, inWidth, w, x, y)
	}
	return out
}

// MaxPool computes spatial max pooling, preserving the input layout.
// Padded positions never win the max (they are treated as -inf).
func MaxPool(in *tensor.Tensor, p nn.ConvParams) *tensor.Tensor {
	s := in.Shape()
	out := tensor.New(convOutShape(s, s.C, p), in.Layout())
	os := out.Shape()
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			for oh := 0; oh < os.H; oh++ {
				for ow := 0; ow < os.W; ow++ {
					best := float32(math.Inf(-1))
					for r := 0; r < p.KernelH; r++ {
						ih := oh*p.StrideH + r - p.PadH
						if ih < 0 || ih >= s.H {
							continue
						}
						for q := 0; q < p.KernelW; q++ {
							iw := ow*p.StrideW + q - p.PadW
							if iw < 0 || iw >= s.W {
								continue
							}
							if v := in.At(n, c, ih, iw); v > best {
								best = v
							}
						}
					}
					out.Set(n, c, oh, ow, best)
				}
			}
		}
	}
	return out
}

// AvgPool computes spatial average pooling, preserving the input
// layout and dividing by the full window area (Caffe convention).
func AvgPool(in *tensor.Tensor, p nn.ConvParams) *tensor.Tensor {
	s := in.Shape()
	out := tensor.New(convOutShape(s, s.C, p), in.Layout())
	os := out.Shape()
	area := float32(p.KernelH * p.KernelW)
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			for oh := 0; oh < os.H; oh++ {
				for ow := 0; ow < os.W; ow++ {
					var sum float32
					for r := 0; r < p.KernelH; r++ {
						ih := oh*p.StrideH + r - p.PadH
						if ih < 0 || ih >= s.H {
							continue
						}
						for q := 0; q < p.KernelW; q++ {
							iw := ow*p.StrideW + q - p.PadW
							if iw < 0 || iw >= s.W {
								continue
							}
							sum += in.At(n, c, ih, iw)
						}
					}
					out.Set(n, c, oh, ow, sum/area)
				}
			}
		}
	}
	return out
}

// ReLU applies max(0, x) element-wise, preserving layout.
func ReLU(in *tensor.Tensor) *tensor.Tensor {
	out := in.Clone()
	d := out.Data()
	for i, v := range d {
		if v < 0 {
			d[i] = 0
		}
	}
	return out
}

// BatchNorm applies the inference-mode affine transform
// y = x*scale[c] + shift[c] per channel, preserving layout.
func BatchNorm(in *tensor.Tensor, scale, shift []float32) *tensor.Tensor {
	s := in.Shape()
	if len(scale) != s.C || len(shift) != s.C {
		panic("kernels: batch-norm parameter size mismatch")
	}
	out := tensor.New(s, in.Layout())
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			for h := 0; h < s.H; h++ {
				for w := 0; w < s.W; w++ {
					out.Set(n, c, h, w, in.At(n, c, h, w)*scale[c]+shift[c])
				}
			}
		}
	}
	return out
}

// LRN applies AlexNet-style cross-channel local response
// normalization with window size, alpha 1e-4, beta 0.75, k 1.
func LRN(in *tensor.Tensor, size int) *tensor.Tensor {
	const (
		alpha = 1e-4
		beta  = 0.75
		k     = 1.0
	)
	s := in.Shape()
	out := tensor.New(s, in.Layout())
	half := size / 2
	for n := 0; n < s.N; n++ {
		for h := 0; h < s.H; h++ {
			for w := 0; w < s.W; w++ {
				for c := 0; c < s.C; c++ {
					var sq float64
					for j := c - half; j <= c+half; j++ {
						if j < 0 || j >= s.C {
							continue
						}
						v := float64(in.At(n, j, h, w))
						sq += v * v
					}
					denom := math.Pow(k+alpha*sq/float64(size), beta)
					out.Set(n, c, h, w, float32(float64(in.At(n, c, h, w))/denom))
				}
			}
		}
	}
	return out
}

// Softmax normalizes each sample's values into probabilities over the
// channel axis (numerically stabilized by max subtraction).
func Softmax(in *tensor.Tensor) *tensor.Tensor {
	s := in.Shape()
	out := tensor.New(s, in.Layout())
	for n := 0; n < s.N; n++ {
		for h := 0; h < s.H; h++ {
			for w := 0; w < s.W; w++ {
				maxv := float64(math.Inf(-1))
				for c := 0; c < s.C; c++ {
					if v := float64(in.At(n, c, h, w)); v > maxv {
						maxv = v
					}
				}
				var sum float64
				exps := make([]float64, s.C)
				for c := 0; c < s.C; c++ {
					e := math.Exp(float64(in.At(n, c, h, w)) - maxv)
					exps[c] = e
					sum += e
				}
				for c := 0; c < s.C; c++ {
					out.Set(n, c, h, w, float32(exps[c]/sum))
				}
			}
		}
	}
	return out
}

// Concat concatenates the inputs along the channel axis. All inputs
// must share N/H/W and layout; the output uses the first input's layout.
func Concat(ins []*tensor.Tensor) *tensor.Tensor {
	if len(ins) == 0 {
		panic("kernels: Concat needs at least one input")
	}
	first := ins[0].Shape()
	total := 0
	for _, in := range ins {
		s := in.Shape()
		if s.N != first.N || s.H != first.H || s.W != first.W {
			panic("kernels: Concat inputs have incompatible shapes")
		}
		if in.Layout() != ins[0].Layout() {
			panic("kernels: Concat inputs must share a layout")
		}
		total += s.C
	}
	out := tensor.New(tensor.Shape{N: first.N, C: total, H: first.H, W: first.W}, ins[0].Layout())
	base := 0
	for _, in := range ins {
		s := in.Shape()
		for n := 0; n < s.N; n++ {
			for c := 0; c < s.C; c++ {
				for h := 0; h < s.H; h++ {
					for w := 0; w < s.W; w++ {
						out.Set(n, base+c, h, w, in.At(n, c, h, w))
					}
				}
			}
		}
		base += s.C
	}
	return out
}

// EltwiseAdd adds two tensors of identical shape element-wise.
func EltwiseAdd(a, b *tensor.Tensor) *tensor.Tensor {
	if !a.Shape().Equal(b.Shape()) {
		panic("kernels: EltwiseAdd shape mismatch")
	}
	bb := b.ToLayout(a.Layout())
	out := a.Clone()
	d, e := out.Data(), bb.Data()
	for i := range d {
		d[i] += e[i]
	}
	return out
}

// Flatten reshapes an activation into N x (CHW) x 1 x 1, materializing
// NCHW order regardless of the input layout.
func Flatten(in *tensor.Tensor) *tensor.Tensor {
	nchw := in.ToLayout(tensor.NCHW)
	s := in.Shape()
	flat := tensor.Shape{N: s.N, C: s.C * s.H * s.W, H: 1, W: 1}
	d := make([]float32, len(nchw.Data()))
	copy(d, nchw.Data())
	return tensor.NewFrom(flat, tensor.NCHW, d)
}
