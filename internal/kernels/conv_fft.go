package kernels

import (
	"math"
	"math/bits"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// FFT-based convolution — NNPACK's algorithm for stride-1 layers with
// kernels too large for Winograd tiles (e.g. the 5x5 branches of
// Inception). The input and each filter are zero-padded to a common
// power-of-two grid, transformed with a radix-2 2-D FFT, multiplied
// point-wise (accumulating over input channels in the frequency
// domain), and transformed back. Complexity is O(C·HW·log HW) per
// output channel instead of O(C·HW·K²).

// fft performs an in-place radix-2 Cooley-Tukey FFT (inverse when
// inv). len(re) must be a power of two.
func fft(re, im []float64, inv bool) {
	n := len(re)
	if n != len(im) || n&(n-1) != 0 {
		panic("kernels: fft length must be a power of two")
	}
	// Bit-reversal permutation.
	shift := bits.LeadingZeros(uint(n)) + 1
	for i := 1; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> shift)
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		ang := 2 * math.Pi / float64(size)
		if !inv {
			ang = -ang
		}
		wr, wi := math.Cos(ang), math.Sin(ang)
		for start := 0; start < n; start += size {
			cr, ci := 1.0, 0.0
			half := size / 2
			for k := 0; k < half; k++ {
				i, j := start+k, start+k+half
				tr := re[j]*cr - im[j]*ci
				ti := re[j]*ci + im[j]*cr
				re[j], im[j] = re[i]-tr, im[i]-ti
				re[i], im[i] = re[i]+tr, im[i]+ti
				cr, ci = cr*wr-ci*wi, cr*wi+ci*wr
			}
		}
	}
	if inv {
		for i := range re {
			re[i] /= float64(n)
			im[i] /= float64(n)
		}
	}
}

// fft2D transforms an n x n grid (row-major) in place.
func fft2D(re, im []float64, n int, inv bool) {
	// Rows.
	for r := 0; r < n; r++ {
		fft(re[r*n:(r+1)*n], im[r*n:(r+1)*n], inv)
	}
	// Columns (gather/scatter through a scratch line).
	colRe := make([]float64, n)
	colIm := make([]float64, n)
	for c := 0; c < n; c++ {
		for r := 0; r < n; r++ {
			colRe[r], colIm[r] = re[r*n+c], im[r*n+c]
		}
		fft(colRe, colIm, inv)
		for r := 0; r < n; r++ {
			re[r*n+c], im[r*n+c] = colRe[r], colIm[r]
		}
	}
}

// nextPow2 returns the smallest power of two >= v.
func nextPow2(v int) int {
	n := 1
	for n < v {
		n <<= 1
	}
	return n
}

// ConvFFT computes a dense stride-1 convolution via 2-D FFT. Panics on
// stride > 1 (the frequency-domain product computes a full correlation
// at stride 1; the registry never selects it otherwise).
func ConvFFT(in *tensor.Tensor, w, bias []float32, p nn.ConvParams) *tensor.Tensor {
	return ConvFFTPar(in, w, bias, p, 1)
}

// ConvFFTPar is ConvFFT with the per-channel input transforms and the
// per-output-channel frequency-domain accumulations partitioned across
// workers goroutines. Input spectra are computed into exclusive slots
// and shared read-only; each worker owns a contiguous output-channel
// chunk (boundaries depend only on the shape and worker count) with its
// own scratch grids, so results are bit-identical at any worker count.
func ConvFFTPar(in *tensor.Tensor, w, bias []float32, p nn.ConvParams, workers int) *tensor.Tensor {
	if in.Layout() != tensor.NCHW {
		panic("kernels: ConvFFT requires NCHW input")
	}
	if p.StrideH != 1 || p.StrideW != 1 {
		panic("kernels: ConvFFT supports only stride-1 convolutions")
	}
	s := in.Shape()
	checkConvArgs(s, w, bias, p)
	out := tensor.New(convOutShape(s, p.OutChannels, p), tensor.NCHW)
	os := out.Shape()

	// Grid large enough for the padded input and the linear (not
	// circular) correlation tail.
	n := nextPow2(maxOf(s.H+2*p.PadH, s.W+2*p.PadW, os.H+p.KernelH, os.W+p.KernelW))
	grid := n * n

	// Pre-transform every input channel once per sample.
	for b := 0; b < s.N; b++ {
		inRe := make([][]float64, s.C)
		inIm := make([][]float64, s.C)
		parFor(s.C, workers, func(c int) {
			re := make([]float64, grid)
			im := make([]float64, grid)
			for h := 0; h < s.H; h++ {
				for x := 0; x < s.W; x++ {
					re[(h+p.PadH)*n+(x+p.PadW)] = float64(in.At(b, c, h, x))
				}
			}
			fft2D(re, im, n, false)
			inRe[c], inIm[c] = re, im
		})

		parChunks(p.OutChannels, workers, func(lo, hi int) {
			kRe := make([]float64, grid)
			kIm := make([]float64, grid)
			accRe := make([]float64, grid)
			accIm := make([]float64, grid)
			for oc := lo; oc < hi; oc++ {
				for i := range accRe {
					accRe[i], accIm[i] = 0, 0
				}
				for c := 0; c < s.C; c++ {
					// Flipped kernel makes the circular convolution a
					// correlation.
					for i := range kRe {
						kRe[i], kIm[i] = 0, 0
					}
					for r := 0; r < p.KernelH; r++ {
						for q := 0; q < p.KernelW; q++ {
							v := float64(w[((oc*s.C+c)*p.KernelH+r)*p.KernelW+q])
							rr := (n - r) % n
							qq := (n - q) % n
							kRe[rr*n+qq] = v
						}
					}
					fft2D(kRe, kIm, n, false)
					ir, ii := inRe[c], inIm[c]
					for i := 0; i < grid; i++ {
						accRe[i] += ir[i]*kRe[i] - ii[i]*kIm[i]
						accIm[i] += ir[i]*kIm[i] + ii[i]*kRe[i]
					}
				}
				fft2D(accRe, accIm, n, true)
				for oh := 0; oh < os.H; oh++ {
					for ow := 0; ow < os.W; ow++ {
						out.Set(b, oc, oh, ow, float32(accRe[oh*n+ow])+bias[oc])
					}
				}
			}
		})
	}
	return out
}

func maxOf(vs ...int) int {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
