package kernels

import (
	"repro/internal/gemm"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// ConvTuned parameterizes the lowering-based convolution paths for the
// per-layer autotuner (internal/tune): how many output rows are lowered
// and multiplied per panel, the lowering fan-out, and the GEMM config
// (micro-kernel, cache blocking, worker override) for the panel
// multiplies. The zero value reproduces the default path: the whole
// lowered matrix materialized at once and multiplied by the default
// parallel GEMM.
type ConvTuned struct {
	// Panel is the number of output rows lowered and multiplied per
	// panel. Instead of materializing the full (C*KH*KW) x (OH*OW)
	// patch matrix — megabytes for real zoo shapes — the lowering runs
	// panel-by-panel so each panel and the GEMM's packed buffers stay
	// cache-resident. Panel tiling splits only the GEMM's n dimension:
	// every output element still accumulates its full k reduction in
	// one register sweep, so a panel-tiled conv is bit-identical to the
	// unpaneled one (given the same Block config). <= 0 disables
	// tiling.
	Panel int
	// Workers is the lowering/gather fan-out and the default GEMM strip
	// fan-out; <= 0 means 1.
	Workers int
	// Block configures the panel GEMMs (see gemm.BlockConfig). Its
	// Workers field, when set, overrides Workers for the GEMM only.
	Block gemm.BlockConfig
}

func (c ConvTuned) workers() int {
	if c.Workers <= 0 {
		return 1
	}
	return c.Workers
}

// mul returns the Gemm the panel multiplies run through.
func (c ConvTuned) mul() Gemm {
	w := c.workers()
	blk := c.Block
	return func(m, n, k int, a, b, cc []float32) {
		gemm.ParallelCfg(m, n, k, a, b, cc, w, blk)
	}
}

// panelRows resolves the panel height in output rows.
func (c ConvTuned) panelRows(oh int) int {
	if c.Panel <= 0 || c.Panel > oh {
		return oh
	}
	return c.Panel
}

// im2colRows writes the im2col lowering of output rows [y0, y1) into
// m: a (C*KH*KW) x ((y1-y0)*ow) matrix, column y*ow+x at offset
// (y-y0)*ow+x. Every entry is written (padding entries as zero), so a
// panel buffer can be reused across panels without clearing.
func im2colRows(in *tensor.Tensor, n int, p nn.ConvParams, ow, y0, y1, workers int, m []float32) {
	s := in.Shape()
	cols := (y1 - y0) * ow
	parFor(y1-y0, workers, func(yy int) {
		y := y0 + yy
		row := 0
		for c := 0; c < s.C; c++ {
			for r := 0; r < p.KernelH; r++ {
				ih := y*p.StrideH + r - p.PadH
				inRow := ih >= 0 && ih < s.H
				for q := 0; q < p.KernelW; q++ {
					base := row*cols + yy*ow
					for x := 0; x < ow; x++ {
						iw := x*p.StrideW + q - p.PadW
						if inRow && iw >= 0 && iw < s.W {
							m[base+x] = in.At(n, c, ih, iw)
						} else {
							m[base+x] = 0
						}
					}
					row++
				}
			}
		}
	})
}

// im2rowRows writes the im2row lowering of output rows [y0, y1) into
// m: a ((y1-y0)*ow) x (C*KH*KW) matrix, patch y*ow+x at row
// (y-y0)*ow+x. Every entry is written, so the buffer reuses cleanly.
func im2rowRows(in *tensor.Tensor, n int, p nn.ConvParams, ow, y0, y1, workers int, m []float32) {
	s := in.Shape()
	ckk := s.C * p.KernelH * p.KernelW
	parFor(y1-y0, workers, func(yy int) {
		y := y0 + yy
		for x := 0; x < ow; x++ {
			base := (yy*ow + x) * ckk
			i := 0
			for c := 0; c < s.C; c++ {
				for r := 0; r < p.KernelH; r++ {
					ih := y*p.StrideH + r - p.PadH
					for q := 0; q < p.KernelW; q++ {
						iw := x*p.StrideW + q - p.PadW
						if ih >= 0 && ih < s.H && iw >= 0 && iw < s.W {
							m[base+i] = in.At(n, c, ih, iw)
						} else {
							m[base+i] = 0
						}
						i++
					}
				}
			}
		}
	})
}

// ConvIm2colTuned is ConvIm2colPar under a ConvTuned config: the
// lowering and GEMM run panel-by-panel over blocks of output rows, and
// the GEMM runs through cfg.Block. With a zero Block the result is
// bit-identical to ConvIm2colPar at any Panel and Workers setting —
// panel tiling splits output columns between GEMM calls without
// changing any element's accumulation order.
func ConvIm2colTuned(in *tensor.Tensor, w, bias []float32, p nn.ConvParams, cfg ConvTuned) *tensor.Tensor {
	if in.Layout() != tensor.NCHW {
		panic("kernels: ConvIm2colTuned requires NCHW input")
	}
	s := in.Shape()
	checkConvArgs(s, w, bias, p)
	out := tensor.New(convOutShape(s, p.OutChannels, p), tensor.NCHW)
	os := out.Shape()
	ckk := s.C * p.KernelH * p.KernelW
	spatial := os.H * os.W
	workers := cfg.workers()
	mul := cfg.mul()
	panel := cfg.panelRows(os.H)
	cols := make([]float32, ckk*panel*os.W)
	pres := make([]float32, p.OutChannels*panel*os.W)
	for n := 0; n < s.N; n++ {
		dst := out.Data()[n*os.C*spatial:]
		for y0 := 0; y0 < os.H; y0 += panel {
			y1 := min(y0+panel, os.H)
			pcols := (y1 - y0) * os.W
			im2colRows(in, n, p, os.W, y0, y1, workers, cols)
			for oc := 0; oc < p.OutChannels; oc++ {
				b := bias[oc]
				row := pres[oc*pcols : (oc+1)*pcols]
				for i := range row {
					row[i] = b
				}
			}
			mul(p.OutChannels, pcols, ckk, w, cols, pres)
			for oc := 0; oc < p.OutChannels; oc++ {
				copy(dst[oc*spatial+y0*os.W:oc*spatial+y1*os.W], pres[oc*pcols:(oc+1)*pcols])
			}
		}
	}
	return out
}

// ConvIm2rowTuned is ConvIm2rowPar under a ConvTuned config, with the
// same panel-tiling contract as ConvIm2colTuned: panels split the
// GEMM's m dimension (patch rows), each output element keeps its full
// k reduction, so a zero Block is bit-identical to ConvIm2rowPar at
// any Panel and Workers setting.
func ConvIm2rowTuned(in *tensor.Tensor, w, bias []float32, p nn.ConvParams, cfg ConvTuned) *tensor.Tensor {
	if in.Layout() != tensor.NCHW {
		panic("kernels: ConvIm2rowTuned requires NCHW input")
	}
	s := in.Shape()
	checkConvArgs(s, w, bias, p)
	out := tensor.New(convOutShape(s, p.OutChannels, p), tensor.NCHW)
	os := out.Shape()
	ckk := s.C * p.KernelH * p.KernelW
	spatial := os.H * os.W
	workers := cfg.workers()
	mul := cfg.mul()
	panel := cfg.panelRows(os.H)
	wt := make([]float32, len(w))
	gemm.Transpose(p.OutChannels, ckk, w, wt)
	rows := make([]float32, panel*os.W*ckk)
	pres := make([]float32, panel*os.W*p.OutChannels)
	for n := 0; n < s.N; n++ {
		dst := out.Data()[n*os.C*spatial:]
		for y0 := 0; y0 < os.H; y0 += panel {
			y1 := min(y0+panel, os.H)
			prows := (y1 - y0) * os.W
			im2rowRows(in, n, p, os.W, y0, y1, workers, rows)
			for i := 0; i < prows; i++ {
				copy(pres[i*p.OutChannels:(i+1)*p.OutChannels], bias)
			}
			mul(prows, p.OutChannels, ckk, rows, wt, pres)
			for i := 0; i < prows; i++ {
				for oc := 0; oc < p.OutChannels; oc++ {
					dst[oc*spatial+y0*os.W+i] = pres[i*p.OutChannels+oc]
				}
			}
		}
	}
	return out
}

// ConvKn2rowTuned is ConvKn2rowPar under a ConvTuned config. Kn2row's
// lowering is already a sequence of rank-C GEMMs (one per kernel
// offset), so Panel has no effect here; the tunables are the gather
// fan-out and the GEMM config.
func ConvKn2rowTuned(in *tensor.Tensor, w, bias []float32, p nn.ConvParams, cfg ConvTuned) *tensor.Tensor {
	return ConvKn2rowPar(in, w, bias, p, cfg.mul(), cfg.workers())
}
