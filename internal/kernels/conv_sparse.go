package kernels

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// CSR is a compressed-sparse-row float32 matrix, the storage behind
// the "Sparse" acceleration library: pruned convolution and FC weights
// kept compressed in memory (the paper lists Sparse as a library for
// conv and FC layers).
type CSR struct {
	Rows, Cols int
	RowPtr     []int32
	ColIdx     []int32
	Values     []float32
}

// NNZ returns the number of stored non-zeros.
func (m *CSR) NNZ() int { return len(m.Values) }

// Density returns the stored-to-total element ratio.
func (m *CSR) Density() float64 {
	if m.Rows*m.Cols == 0 {
		return 0
	}
	return float64(m.NNZ()) / float64(m.Rows*m.Cols)
}

// FromDense compresses a row-major dense matrix, dropping entries with
// |v| <= threshold. Threshold 0 keeps every exact non-zero.
func FromDense(rows, cols int, dense []float32, threshold float32) *CSR {
	if len(dense) != rows*cols {
		panic(fmt.Sprintf("kernels: dense matrix has %d elements, need %d", len(dense), rows*cols))
	}
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1)}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := dense[i*cols+j]
			if v > threshold || v < -threshold {
				m.ColIdx = append(m.ColIdx, int32(j))
				m.Values = append(m.Values, v)
			}
		}
		m.RowPtr[i+1] = int32(len(m.Values))
	}
	return m
}

// ToDense expands the CSR matrix back to row-major dense form.
func (m *CSR) ToDense() []float32 {
	d := make([]float32, m.Rows*m.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d[i*m.Cols+int(m.ColIdx[k])] = m.Values[k]
		}
	}
	return d
}

// MulMat computes C = M*B + C for dense row-major B (Cols x n) and
// C (Rows x n) — a CSR-times-dense SpMM.
func (m *CSR) MulMat(n int, b, c []float32) {
	if len(b) < m.Cols*n || len(c) < m.Rows*n {
		panic("kernels: CSR MulMat operand too short")
	}
	for i := 0; i < m.Rows; i++ {
		crow := c[i*n : i*n+n]
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			v := m.Values[k]
			brow := b[int(m.ColIdx[k])*n : int(m.ColIdx[k])*n+n]
			for j := range crow {
				crow[j] += v * brow[j]
			}
		}
	}
}

// MulVec computes y = M*x + y — a CSR SpMV, the sparse FC kernel.
func (m *CSR) MulVec(x, y []float32) {
	if len(x) < m.Cols || len(y) < m.Rows {
		panic("kernels: CSR MulVec operand too short")
	}
	for i := 0; i < m.Rows; i++ {
		var sum float32
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			sum += m.Values[k] * x[m.ColIdx[k]]
		}
		y[i] += sum
	}
}

// ConvSparse computes a dense-output convolution whose weights are a
// CSR matrix of shape (OC x C*KH*KW): im2col the input, then SpMM.
func ConvSparse(in *tensor.Tensor, w *CSR, bias []float32, p nn.ConvParams) *tensor.Tensor {
	if in.Layout() != tensor.NCHW {
		panic("kernels: ConvSparse requires NCHW input")
	}
	s := in.Shape()
	if w.Rows != p.OutChannels || w.Cols != s.C*p.KernelH*p.KernelW {
		panic(fmt.Sprintf("kernels: sparse weights %dx%d incompatible with conv %d x %d",
			w.Rows, w.Cols, p.OutChannels, s.C*p.KernelH*p.KernelW))
	}
	if len(bias) != p.OutChannels {
		panic("kernels: sparse conv bias size mismatch")
	}
	out := tensor.New(convOutShape(s, p.OutChannels, p), tensor.NCHW)
	os := out.Shape()
	spatial := os.H * os.W
	for n := 0; n < s.N; n++ {
		cols := Im2col(in, n, p, os.H, os.W)
		res := make([]float32, p.OutChannels*spatial)
		for oc := 0; oc < p.OutChannels; oc++ {
			b := bias[oc]
			row := res[oc*spatial : (oc+1)*spatial]
			for i := range row {
				row[i] = b
			}
		}
		w.MulMat(spatial, cols, res)
		copy(out.Data()[n*os.C*spatial:], res)
	}
	return out
}

// FCSparse computes a fully-connected layer with CSR weights
// (OutUnits x In): SpMV plus bias.
func FCSparse(in *tensor.Tensor, w *CSR, bias []float32) *tensor.Tensor {
	s := in.Shape()
	inWidth := s.C * s.H * s.W
	if w.Cols != inWidth || len(bias) != w.Rows {
		panic(fmt.Sprintf("kernels: sparse FC %dx%d incompatible with input %d / bias %d",
			w.Rows, w.Cols, inWidth, len(bias)))
	}
	out := tensor.New(tensor.Shape{N: s.N, C: w.Rows, H: 1, W: 1}, tensor.NCHW)
	for n := 0; n < s.N; n++ {
		x := in.Data()[n*inWidth : (n+1)*inWidth]
		y := out.Data()[n*w.Rows : (n+1)*w.Rows]
		copy(y, bias)
		w.MulVec(x, y)
	}
	return out
}
