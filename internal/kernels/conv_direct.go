// Package kernels implements the actual float32 compute primitives the
// inference engine executes: direct convolution (the reference every
// other variant is tested against), the BLAS-style lowerings (im2col,
// im2row, kn2row), Winograd F(2x2,3x3), depth-wise and sparse
// convolution, fully-connected kernels, and the element-wise / pooling
// / normalization operators. NCHW is the native layout; a handful of
// NHWC-native kernels exist so the engine has genuinely
// layout-incompatible primitives to choose between.
package kernels

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// convOutShape computes the output shape of a convolution-like op.
func convOutShape(in tensor.Shape, outC int, p nn.ConvParams) tensor.Shape {
	oh := (in.H+2*p.PadH-p.KernelH)/p.StrideH + 1
	ow := (in.W+2*p.PadW-p.KernelW)/p.StrideW + 1
	return tensor.Shape{N: in.N, C: outC, H: oh, W: ow}
}

// checkConvArgs validates weight/bias lengths for a dense convolution.
func checkConvArgs(in tensor.Shape, w, bias []float32, p nn.ConvParams) {
	need := p.OutChannels * in.C * p.KernelH * p.KernelW
	if len(w) != need {
		panic(fmt.Sprintf("kernels: conv weights have %d elements, need %d", len(w), need))
	}
	if len(bias) != p.OutChannels {
		panic(fmt.Sprintf("kernels: conv bias has %d elements, need %d", len(bias), p.OutChannels))
	}
}

// ConvDirect computes a dense 2-D convolution over an NCHW input with
// OIHW weights, the dependency-free "Vanilla" implementation and the
// numerical reference for every other conv kernel.
func ConvDirect(in *tensor.Tensor, w, bias []float32, p nn.ConvParams) *tensor.Tensor {
	return ConvDirectPar(in, w, bias, p, 1)
}

// ConvDirectPar is ConvDirect with the (sample, output-channel) planes
// partitioned across at most workers goroutines. Each plane is computed
// by exactly one iteration with the sequential code, so the output is
// bit-identical to ConvDirect at any worker count.
func ConvDirectPar(in *tensor.Tensor, w, bias []float32, p nn.ConvParams, workers int) *tensor.Tensor {
	if in.Layout() != tensor.NCHW {
		panic("kernels: ConvDirect requires NCHW input")
	}
	s := in.Shape()
	checkConvArgs(s, w, bias, p)
	out := tensor.New(convOutShape(s, p.OutChannels, p), tensor.NCHW)
	os := out.Shape()
	kArea := p.KernelH * p.KernelW
	parFor(s.N*os.C, workers, func(j int) {
		n, oc := j/os.C, j%os.C
		wBase := oc * s.C * kArea
		for oh := 0; oh < os.H; oh++ {
			for ow := 0; ow < os.W; ow++ {
				sum := bias[oc]
				for c := 0; c < s.C; c++ {
					for r := 0; r < p.KernelH; r++ {
						ih := oh*p.StrideH + r - p.PadH
						if ih < 0 || ih >= s.H {
							continue
						}
						for q := 0; q < p.KernelW; q++ {
							iw := ow*p.StrideW + q - p.PadW
							if iw < 0 || iw >= s.W {
								continue
							}
							sum += w[wBase+c*kArea+r*p.KernelW+q] * in.At(n, c, ih, iw)
						}
					}
				}
				out.Set(n, oc, oh, ow, sum)
			}
		}
	})
	return out
}

// ConvDirectNHWC is ConvDirect for NHWC input, producing NHWC output.
// It exists so the primitive registry has a genuinely NHWC-native
// convolution (the NNPACK-style family), making layout conversions a
// real cost rather than bookkeeping.
func ConvDirectNHWC(in *tensor.Tensor, w, bias []float32, p nn.ConvParams) *tensor.Tensor {
	return ConvDirectNHWCPar(in, w, bias, p, 1)
}

// ConvDirectNHWCPar is ConvDirectNHWC with the (sample, output-row)
// slabs partitioned across workers goroutines; output rows are
// contiguous exclusive slabs in NHWC, so results are bit-identical at
// any worker count.
func ConvDirectNHWCPar(in *tensor.Tensor, w, bias []float32, p nn.ConvParams, workers int) *tensor.Tensor {
	if in.Layout() != tensor.NHWC {
		panic("kernels: ConvDirectNHWC requires NHWC input")
	}
	s := in.Shape()
	checkConvArgs(s, w, bias, p)
	out := tensor.New(convOutShape(s, p.OutChannels, p), tensor.NHWC)
	os := out.Shape()
	kArea := p.KernelH * p.KernelW
	parFor(s.N*os.H, workers, func(j int) {
		n, oh := j/os.H, j%os.H
		for ow := 0; ow < os.W; ow++ {
			for oc := 0; oc < os.C; oc++ {
				sum := bias[oc]
				wBase := oc * s.C * kArea
				for r := 0; r < p.KernelH; r++ {
					ih := oh*p.StrideH + r - p.PadH
					if ih < 0 || ih >= s.H {
						continue
					}
					for q := 0; q < p.KernelW; q++ {
						iw := ow*p.StrideW + q - p.PadW
						if iw < 0 || iw >= s.W {
							continue
						}
						for c := 0; c < s.C; c++ {
							sum += w[wBase+c*kArea+r*p.KernelW+q] * in.At(n, c, ih, iw)
						}
					}
				}
				out.Set(n, oc, oh, ow, sum)
			}
		}
	})
	return out
}

// DepthwiseDirect computes a depth-wise convolution (one KxK filter per
// channel) over an NCHW input. Weights are C*KH*KW, bias is C.
func DepthwiseDirect(in *tensor.Tensor, w, bias []float32, p nn.ConvParams) *tensor.Tensor {
	return DepthwiseDirectPar(in, w, bias, p, 1)
}

// DepthwiseDirectPar is DepthwiseDirect with the (sample, channel)
// planes partitioned across workers goroutines; planes are exclusive,
// so results are bit-identical at any worker count.
func DepthwiseDirectPar(in *tensor.Tensor, w, bias []float32, p nn.ConvParams, workers int) *tensor.Tensor {
	if in.Layout() != tensor.NCHW {
		panic("kernels: DepthwiseDirect requires NCHW input")
	}
	s := in.Shape()
	kArea := p.KernelH * p.KernelW
	if len(w) != s.C*kArea {
		panic(fmt.Sprintf("kernels: depthwise weights have %d elements, need %d", len(w), s.C*kArea))
	}
	if len(bias) != s.C {
		panic(fmt.Sprintf("kernels: depthwise bias has %d elements, need %d", len(bias), s.C))
	}
	out := tensor.New(convOutShape(s, s.C, p), tensor.NCHW)
	os := out.Shape()
	parFor(s.N*s.C, workers, func(j int) {
		n, c := j/s.C, j%s.C
		wBase := c * kArea
		for oh := 0; oh < os.H; oh++ {
			for ow := 0; ow < os.W; ow++ {
				sum := bias[c]
				for r := 0; r < p.KernelH; r++ {
					ih := oh*p.StrideH + r - p.PadH
					if ih < 0 || ih >= s.H {
						continue
					}
					for q := 0; q < p.KernelW; q++ {
						iw := ow*p.StrideW + q - p.PadW
						if iw < 0 || iw >= s.W {
							continue
						}
						sum += w[wBase+r*p.KernelW+q] * in.At(n, c, ih, iw)
					}
				}
				out.Set(n, c, oh, ow, sum)
			}
		}
	})
	return out
}

// DepthwiseNHWC is DepthwiseDirect for NHWC input/output (the
// ArmCL-style specialized depth-wise code path).
func DepthwiseNHWC(in *tensor.Tensor, w, bias []float32, p nn.ConvParams) *tensor.Tensor {
	return DepthwiseNHWCPar(in, w, bias, p, 1)
}

// DepthwiseNHWCPar is DepthwiseNHWC with the (sample, output-row)
// slabs partitioned across workers goroutines; results are
// bit-identical at any worker count.
func DepthwiseNHWCPar(in *tensor.Tensor, w, bias []float32, p nn.ConvParams, workers int) *tensor.Tensor {
	if in.Layout() != tensor.NHWC {
		panic("kernels: DepthwiseNHWC requires NHWC input")
	}
	s := in.Shape()
	kArea := p.KernelH * p.KernelW
	if len(w) != s.C*kArea || len(bias) != s.C {
		panic("kernels: depthwise weight/bias size mismatch")
	}
	out := tensor.New(convOutShape(s, s.C, p), tensor.NHWC)
	os := out.Shape()
	parFor(s.N*os.H, workers, func(j int) {
		n, oh := j/os.H, j%os.H
		for ow := 0; ow < os.W; ow++ {
			for c := 0; c < s.C; c++ {
				sum := bias[c]
				wBase := c * kArea
				for r := 0; r < p.KernelH; r++ {
					ih := oh*p.StrideH + r - p.PadH
					if ih < 0 || ih >= s.H {
						continue
					}
					for q := 0; q < p.KernelW; q++ {
						iw := ow*p.StrideW + q - p.PadW
						if iw < 0 || iw >= s.W {
							continue
						}
						sum += w[wBase+r*p.KernelW+q] * in.At(n, c, ih, iw)
					}
				}
				out.Set(n, c, oh, ow, sum)
			}
		}
	})
	return out
}
