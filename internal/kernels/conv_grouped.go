package kernels

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Grouped convolution — AlexNet's conv2/4/5 split channels into two
// independent halves (a two-GPU training artifact the deployed model
// keeps). Weights are OIHW with I = C/groups; output channel block g
// sees only input channel block g.

// checkGroupedArgs validates a grouped convolution's geometry.
func checkGroupedArgs(in tensor.Shape, w, bias []float32, p nn.ConvParams) error {
	g := p.GroupCount()
	if in.C%g != 0 || p.OutChannels%g != 0 {
		return fmt.Errorf("kernels: groups %d do not divide channels %d->%d", g, in.C, p.OutChannels)
	}
	need := p.OutChannels * (in.C / g) * p.KernelH * p.KernelW
	if len(w) != need {
		return fmt.Errorf("kernels: grouped conv weights have %d elements, need %d", len(w), need)
	}
	if len(bias) != p.OutChannels {
		return fmt.Errorf("kernels: grouped conv bias has %d elements, need %d", len(bias), p.OutChannels)
	}
	return nil
}

// ConvGroupedDirect computes a grouped convolution with the direct
// algorithm over an NCHW input.
func ConvGroupedDirect(in *tensor.Tensor, w, bias []float32, p nn.ConvParams) *tensor.Tensor {
	return ConvGroupedDirectPar(in, w, bias, p, 1)
}

// ConvGroupedDirectPar is ConvGroupedDirect with the (sample,
// output-channel) planes partitioned across workers goroutines (each
// output channel reads only its own group's input block); results are
// bit-identical at any worker count.
func ConvGroupedDirectPar(in *tensor.Tensor, w, bias []float32, p nn.ConvParams, workers int) *tensor.Tensor {
	if in.Layout() != tensor.NCHW {
		panic("kernels: ConvGroupedDirect requires NCHW input")
	}
	s := in.Shape()
	if err := checkGroupedArgs(s, w, bias, p); err != nil {
		panic(err.Error())
	}
	g := p.GroupCount()
	if g == 1 {
		return ConvDirectPar(in, w, bias, p, workers)
	}
	inPerG, outPerG := s.C/g, p.OutChannels/g
	kArea := p.KernelH * p.KernelW
	out := tensor.New(convOutShape(s, p.OutChannels, p), tensor.NCHW)
	os := out.Shape()
	parFor(s.N*p.OutChannels, workers, func(j int) {
		n, oc := j/p.OutChannels, j%p.OutChannels
		grp := oc / outPerG
		wBase := oc * inPerG * kArea
		for oh := 0; oh < os.H; oh++ {
			for ow := 0; ow < os.W; ow++ {
				sum := bias[oc]
				for cLocal := 0; cLocal < inPerG; cLocal++ {
					c := grp*inPerG + cLocal
					for r := 0; r < p.KernelH; r++ {
						ih := oh*p.StrideH + r - p.PadH
						if ih < 0 || ih >= s.H {
							continue
						}
						for q := 0; q < p.KernelW; q++ {
							iw := ow*p.StrideW + q - p.PadW
							if iw < 0 || iw >= s.W {
								continue
							}
							sum += w[wBase+cLocal*kArea+r*p.KernelW+q] * in.At(n, c, ih, iw)
						}
					}
				}
				out.Set(n, oc, oh, ow, sum)
			}
		}
	})
	return out
}

// sliceChannels copies a channel range [from, to) of an NCHW tensor
// into a fresh tensor.
func sliceChannels(in *tensor.Tensor, from, to int) *tensor.Tensor {
	s := in.Shape()
	out := tensor.New(tensor.Shape{N: s.N, C: to - from, H: s.H, W: s.W}, tensor.NCHW)
	for n := 0; n < s.N; n++ {
		for c := from; c < to; c++ {
			for h := 0; h < s.H; h++ {
				for w := 0; w < s.W; w++ {
					out.Set(n, c-from, h, w, in.At(n, c, h, w))
				}
			}
		}
	}
	return out
}

// ConvGroupedIm2col computes a grouped convolution as one im2col GEMM
// per group (how BLAS libraries implement grouping).
func ConvGroupedIm2col(in *tensor.Tensor, w, bias []float32, p nn.ConvParams, mul Gemm) *tensor.Tensor {
	return ConvGroupedIm2colPar(in, w, bias, p, mul, 1)
}

// ConvGroupedIm2colPar is ConvGroupedIm2col with the groups partitioned
// across workers goroutines. Each group slices its own input channels,
// runs its own sequential im2col GEMM, and writes an exclusive output
// channel block, so results are bit-identical at any worker count.
func ConvGroupedIm2colPar(in *tensor.Tensor, w, bias []float32, p nn.ConvParams, mul Gemm, workers int) *tensor.Tensor {
	if in.Layout() != tensor.NCHW {
		panic("kernels: ConvGroupedIm2col requires NCHW input")
	}
	s := in.Shape()
	if err := checkGroupedArgs(s, w, bias, p); err != nil {
		panic(err.Error())
	}
	g := p.GroupCount()
	if g == 1 {
		return ConvIm2colPar(in, w, bias, p, mul, workers)
	}
	inPerG, outPerG := s.C/g, p.OutChannels/g
	out := tensor.New(convOutShape(s, p.OutChannels, p), tensor.NCHW)
	os := out.Shape()
	spatial := os.H * os.W
	kArea := p.KernelH * p.KernelW
	sub := p
	sub.OutChannels = outPerG
	sub.Groups = 1
	parFor(g, workers, func(grp int) {
		gin := sliceChannels(in, grp*inPerG, (grp+1)*inPerG)
		gw := w[grp*outPerG*inPerG*kArea : (grp+1)*outPerG*inPerG*kArea]
		gb := bias[grp*outPerG : (grp+1)*outPerG]
		gout := ConvIm2col(gin, gw, gb, sub, mul)
		for n := 0; n < s.N; n++ {
			src := gout.Data()[n*outPerG*spatial:]
			dst := out.Data()[n*os.C*spatial+grp*outPerG*spatial:]
			copy(dst[:outPerG*spatial], src[:outPerG*spatial])
		}
	})
	return out
}

// IsGrouped reports whether a conv layer uses more than one group.
func IsGrouped(p nn.ConvParams) bool { return p.GroupCount() > 1 }
