package kernels

import "repro/internal/pool"

// parFor runs fn(i) for i in [0, n) on at most workers goroutines from
// the bounded pool (inline when workers <= 1). Every iteration runs
// exactly once, so as long as iteration i writes only state it owns —
// which is how every Par kernel partitions its output — the result is
// bit-identical to the sequential loop at any worker count: no output
// element's reduction order changes, only which goroutine runs it.
func parFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	pool.Run(n, workers, fn)
}

// parChunks partitions [0, n) into exactly workers contiguous chunks
// (boundaries depend only on n and workers) and runs fn(lo, hi) for
// each on its own pool goroutine. Used where each chunk wants
// worker-local scratch buffers amortized across its iterations.
func parChunks(n, workers int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	pool.Run(workers, workers, func(w int) {
		fn(w*n/workers, (w+1)*n/workers)
	})
}
