package kernels

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gemm"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// randConv builds a random input, weights and bias for the geometry.
func randConv(rng *rand.Rand, in tensor.Shape, p nn.ConvParams) (*tensor.Tensor, []float32, []float32) {
	x := tensor.New(in, tensor.NCHW)
	x.FillRandom(rng, 1)
	w := make([]float32, p.OutChannels*in.C*p.KernelH*p.KernelW)
	for i := range w {
		w[i] = rng.Float32()*2 - 1
	}
	b := make([]float32, p.OutChannels)
	for i := range b {
		b[i] = rng.Float32()
	}
	return x, w, b
}

var convGeometries = []struct {
	name string
	in   tensor.Shape
	p    nn.ConvParams
}{
	{"3x3s1p1", tensor.Shape{N: 1, C: 3, H: 8, W: 8},
		nn.ConvParams{OutChannels: 4, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}},
	{"5x5s1p0", tensor.Shape{N: 1, C: 2, H: 12, W: 10},
		nn.ConvParams{OutChannels: 6, KernelH: 5, KernelW: 5, StrideH: 1, StrideW: 1}},
	{"3x3s2p1", tensor.Shape{N: 1, C: 4, H: 9, W: 9},
		nn.ConvParams{OutChannels: 8, KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}},
	{"1x1s1p0", tensor.Shape{N: 1, C: 7, H: 6, W: 5},
		nn.ConvParams{OutChannels: 3, KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1}},
	{"11x11s4p0", tensor.Shape{N: 1, C: 3, H: 35, W: 35},
		nn.ConvParams{OutChannels: 2, KernelH: 11, KernelW: 11, StrideH: 4, StrideW: 4}},
	{"batch2", tensor.Shape{N: 2, C: 3, H: 6, W: 6},
		nn.ConvParams{OutChannels: 4, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}},
	{"asym", tensor.Shape{N: 1, C: 2, H: 7, W: 11},
		nn.ConvParams{OutChannels: 3, KernelH: 3, KernelW: 5, StrideH: 2, StrideW: 1, PadH: 1, PadW: 2}},
}

const convTol = 1e-3

func TestConvVariantsMatchDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	variants := []struct {
		name string
		run  func(in *tensor.Tensor, w, b []float32, p nn.ConvParams) *tensor.Tensor
	}{
		{"im2col-naive", func(in *tensor.Tensor, w, b []float32, p nn.ConvParams) *tensor.Tensor {
			return ConvIm2col(in, w, b, p, gemm.Naive)
		}},
		{"im2col-blocked", func(in *tensor.Tensor, w, b []float32, p nn.ConvParams) *tensor.Tensor {
			return ConvIm2col(in, w, b, p, gemm.Blocked)
		}},
		{"im2row", func(in *tensor.Tensor, w, b []float32, p nn.ConvParams) *tensor.Tensor {
			return ConvIm2row(in, w, b, p, gemm.Blocked)
		}},
		{"kn2row", func(in *tensor.Tensor, w, b []float32, p nn.ConvParams) *tensor.Tensor {
			return ConvKn2row(in, w, b, p, gemm.Blocked)
		}},
		{"nhwc", func(in *tensor.Tensor, w, b []float32, p nn.ConvParams) *tensor.Tensor {
			return ConvDirectNHWC(in.ToLayout(tensor.NHWC), w, b, p).ToLayout(tensor.NCHW)
		}},
		{"sparse-dense", func(in *tensor.Tensor, w, b []float32, p nn.ConvParams) *tensor.Tensor {
			csr := FromDense(p.OutChannels, in.Shape().C*p.KernelH*p.KernelW, w, 0)
			return ConvSparse(in, csr, b, p)
		}},
	}
	for _, g := range convGeometries {
		x, w, b := randConv(rng, g.in, g.p)
		ref := ConvDirect(x, w, b, g.p)
		for _, v := range variants {
			got := v.run(x, w, b, g.p)
			if got.Layout() != tensor.NCHW {
				got = got.ToLayout(tensor.NCHW)
			}
			if !got.Shape().Equal(ref.Shape()) {
				t.Errorf("%s/%s: shape %v, want %v", g.name, v.name, got.Shape(), ref.Shape())
				continue
			}
			if d := tensor.MaxAbsDiff(ref, got); d > convTol {
				t.Errorf("%s/%s: max diff %g > %g", g.name, v.name, d, convTol)
			}
		}
	}
}

func TestWinogradMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, g := range convGeometries {
		if g.p.KernelH != 3 || g.p.KernelW != 3 || g.p.StrideH != 1 || g.p.StrideW != 1 {
			continue
		}
		x, w, b := randConv(rng, g.in, g.p)
		ref := ConvDirect(x, w, b, g.p)
		got := ConvWinograd(x, w, b, g.p)
		if d := tensor.MaxAbsDiff(ref, got); d > convTol {
			t.Errorf("%s: winograd max diff %g", g.name, d)
		}
	}
	// Odd output size exercises the partial-tile edge.
	in := tensor.Shape{N: 1, C: 2, H: 7, W: 9}
	p := nn.ConvParams{OutChannels: 3, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	x, w, b := randConv(rng, in, p)
	if d := tensor.MaxAbsDiff(ConvDirect(x, w, b, p), ConvWinograd(x, w, b, p)); d > convTol {
		t.Errorf("odd-size winograd max diff %g", d)
	}
}

func TestWinogradRejectsBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("5x5 winograd should panic")
		}
	}()
	p := nn.ConvParams{OutChannels: 1, KernelH: 5, KernelW: 5, StrideH: 1, StrideW: 1}
	x, w, b := randConv(rand.New(rand.NewSource(1)), tensor.Shape{N: 1, C: 1, H: 8, W: 8}, p)
	ConvWinograd(x, w, b, p)
}

// Property: im2col and direct agree on random small geometries.
func TestConvLoweringProperty(t *testing.T) {
	f := func(ch, oc, k, hw uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		kernel := int(k%3) + 1
		size := kernel + int(hw%6)
		in := tensor.Shape{N: 1, C: int(ch%4) + 1, H: size, W: size}
		p := nn.ConvParams{
			OutChannels: int(oc%5) + 1,
			KernelH:     kernel, KernelW: kernel,
			StrideH: 1, StrideW: 1,
			PadH: int(k % 2), PadW: int(k % 2),
		}
		x, w, b := randConv(rng, in, p)
		ref := ConvDirect(x, w, b, p)
		got := ConvIm2col(x, w, b, p, gemm.Blocked)
		return tensor.MaxAbsDiff(ref, got) <= convTol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDepthwiseMatchesPerChannelDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := tensor.Shape{N: 1, C: 6, H: 9, W: 9}
	p := nn.ConvParams{OutChannels: 6, KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	x := tensor.New(in, tensor.NCHW)
	x.FillRandom(rng, 1)
	w := make([]float32, in.C*9)
	for i := range w {
		w[i] = rng.Float32()*2 - 1
	}
	b := make([]float32, in.C)
	for i := range b {
		b[i] = rng.Float32()
	}
	got := DepthwiseDirect(x, w, b, p)

	// Reference: depthwise == dense conv with a block-diagonal filter.
	dense := make([]float32, in.C*in.C*9)
	for c := 0; c < in.C; c++ {
		copy(dense[(c*in.C+c)*9:(c*in.C+c)*9+9], w[c*9:c*9+9])
	}
	ref := ConvDirect(x, dense, b, p)
	if d := tensor.MaxAbsDiff(ref, got); d > convTol {
		t.Errorf("depthwise max diff %g", d)
	}

	// NHWC variant agrees too.
	got2 := DepthwiseNHWC(x.ToLayout(tensor.NHWC), w, b, p)
	if d := tensor.MaxAbsDiff(ref, got2.ToLayout(tensor.NCHW)); d > convTol {
		t.Errorf("depthwise NHWC max diff %g", d)
	}
}

func TestConvDirectRejectsWrongLayout(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NHWC input to ConvDirect should panic")
		}
	}()
	p := nn.ConvParams{OutChannels: 1, KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1}
	ConvDirect(tensor.New(tensor.Shape{N: 1, C: 1, H: 2, W: 2}, tensor.NHWC), []float32{1}, []float32{0}, p)
}

func TestConvWeightSizeChecked(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("short weights should panic")
		}
	}()
	p := nn.ConvParams{OutChannels: 2, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1}
	ConvDirect(tensor.New(tensor.Shape{N: 1, C: 1, H: 4, W: 4}, tensor.NCHW), []float32{1, 2}, []float32{0, 0}, p)
}

func TestCSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rows, cols := 9, 14
	dense := make([]float32, rows*cols)
	for i := range dense {
		if rng.Float32() < 0.3 {
			dense[i] = rng.Float32()*2 - 1
		}
	}
	csr := FromDense(rows, cols, dense, 0)
	back := csr.ToDense()
	for i := range dense {
		if dense[i] != back[i] {
			t.Fatalf("round trip differs at %d: %v vs %v", i, dense[i], back[i])
		}
	}
	if csr.Density() > 0.5 {
		t.Errorf("density %v unexpectedly high", csr.Density())
	}
}

func TestCSRThresholdPrunes(t *testing.T) {
	dense := []float32{0.05, -0.5, 0.2, -0.01}
	csr := FromDense(2, 2, dense, 0.1)
	if csr.NNZ() != 2 {
		t.Errorf("NNZ = %d, want 2", csr.NNZ())
	}
}

func TestFCSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	in := tensor.New(tensor.Shape{N: 1, C: 20, H: 1, W: 1}, tensor.NCHW)
	in.FillRandom(rng, 1)
	w := make([]float32, 8*20)
	for i := range w {
		w[i] = rng.Float32()*2 - 1
	}
	b := make([]float32, 8)
	ref := FCGemv(in, w, b, 8)
	got := FCSparse(in, FromDense(8, 20, w, 0), b)
	if d := tensor.MaxAbsDiff(ref, got); d > convTol {
		t.Errorf("sparse FC max diff %g", d)
	}
}
