package kernels

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// ConvWinograd computes a 3x3 stride-1 dense convolution with the
// Winograd F(2x2, 3x3) algorithm: the input is processed in 4x4 tiles
// producing 2x2 output tiles, with the filter transformed once. This
// is the ArmCL/NNPACK fast path for the 3x3 convolutions that dominate
// VGG-style networks. Panics if the geometry is not 3x3 stride 1 —
// the primitive registry never selects it otherwise.
func ConvWinograd(in *tensor.Tensor, w, bias []float32, p nn.ConvParams) *tensor.Tensor {
	return ConvWinogradPar(in, w, bias, p, 1)
}

// ConvWinogradPar is ConvWinograd with the (sample, output-channel)
// tile batches partitioned across workers goroutines. The filter
// transform is computed once and shared read-only; each (n, oc) plane
// of tiles is owned by one iteration with its own scratch, so results
// are bit-identical at any worker count.
func ConvWinogradPar(in *tensor.Tensor, w, bias []float32, p nn.ConvParams, workers int) *tensor.Tensor {
	if in.Layout() != tensor.NCHW {
		panic("kernels: ConvWinograd requires NCHW input")
	}
	if p.KernelH != 3 || p.KernelW != 3 || p.StrideH != 1 || p.StrideW != 1 {
		panic("kernels: ConvWinograd supports only 3x3 stride-1 convolutions")
	}
	s := in.Shape()
	checkConvArgs(s, w, bias, p)
	out := tensor.New(convOutShape(s, p.OutChannels, p), tensor.NCHW)
	os := out.Shape()

	// Filter transform U = G g G^T, one 4x4 block per (oc, c).
	// G = [1 0 0; .5 .5 .5; .5 -.5 .5; 0 0 1]
	u := make([]float32, p.OutChannels*s.C*16)
	for oc := 0; oc < p.OutChannels; oc++ {
		for c := 0; c < s.C; c++ {
			g := w[(oc*s.C+c)*9 : (oc*s.C+c)*9+9]
			// t = G * g  (4x3)
			var t [12]float32
			for col := 0; col < 3; col++ {
				g0, g1, g2 := g[col], g[3+col], g[6+col]
				t[col] = g0
				t[3+col] = 0.5 * (g0 + g1 + g2)
				t[6+col] = 0.5 * (g0 - g1 + g2)
				t[9+col] = g2
			}
			// U = t * G^T (4x4)
			dst := u[(oc*s.C+c)*16:]
			for row := 0; row < 4; row++ {
				a, b2, c2 := t[row*3], t[row*3+1], t[row*3+2]
				dst[row*4] = a
				dst[row*4+1] = 0.5 * (a + b2 + c2)
				dst[row*4+2] = 0.5 * (a - b2 + c2)
				dst[row*4+3] = c2
			}
		}
	}

	tilesH := (os.H + 1) / 2
	tilesW := (os.W + 1) / 2
	parFor(s.N*p.OutChannels, workers, func(j int) {
		n, oc := j/p.OutChannels, j%p.OutChannels
		var d, v, m [16]float32
		{
			for ty := 0; ty < tilesH; ty++ {
				for tx := 0; tx < tilesW; tx++ {
					for i := range m {
						m[i] = 0
					}
					for c := 0; c < s.C; c++ {
						// Load the 4x4 input tile (zero padded).
						for y := 0; y < 4; y++ {
							ih := ty*2 + y - p.PadH
							for x := 0; x < 4; x++ {
								iw := tx*2 + x - p.PadW
								if ih >= 0 && ih < s.H && iw >= 0 && iw < s.W {
									d[y*4+x] = in.At(n, c, ih, iw)
								} else {
									d[y*4+x] = 0
								}
							}
						}
						// V = B^T d B with
						// B^T = [1 0 -1 0; 0 1 1 0; 0 -1 1 0; 0 1 0 -1]
						var tmp [16]float32
						for col := 0; col < 4; col++ {
							d0, d1, d2, d3 := d[col], d[4+col], d[8+col], d[12+col]
							tmp[col] = d0 - d2
							tmp[4+col] = d1 + d2
							tmp[8+col] = d2 - d1
							tmp[12+col] = d1 - d3
						}
						for row := 0; row < 4; row++ {
							t0, t1, t2, t3 := tmp[row*4], tmp[row*4+1], tmp[row*4+2], tmp[row*4+3]
							v[row*4] = t0 - t2
							v[row*4+1] = t1 + t2
							v[row*4+2] = t2 - t1
							v[row*4+3] = t1 - t3
						}
						// M += U ⊙ V
						ub := u[(oc*s.C+c)*16:]
						for i := 0; i < 16; i++ {
							m[i] += ub[i] * v[i]
						}
					}
					// Y = A^T M A with A^T = [1 1 1 0; 0 1 -1 -1]
					var rows [8]float32
					for col := 0; col < 4; col++ {
						m0, m1, m2, m3 := m[col], m[4+col], m[8+col], m[12+col]
						rows[col] = m0 + m1 + m2
						rows[4+col] = m1 - m2 - m3
					}
					var y00, y01, y10, y11 float32
					y00 = rows[0] + rows[1] + rows[2]
					y01 = rows[1] - rows[2] - rows[3]
					y10 = rows[4] + rows[5] + rows[6]
					y11 = rows[5] - rows[6] - rows[7]

					oy, ox := ty*2, tx*2
					out.Set(n, oc, oy, ox, y00+bias[oc])
					if ox+1 < os.W {
						out.Set(n, oc, oy, ox+1, y01+bias[oc])
					}
					if oy+1 < os.H {
						out.Set(n, oc, oy+1, ox, y10+bias[oc])
						if ox+1 < os.W {
							out.Set(n, oc, oy+1, ox+1, y11+bias[oc])
						}
					}
				}
			}
		}
	})
	return out
}
