package analysis

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lut"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/platform"
	"repro/internal/primitives"
	"repro/internal/profile"
)

func searched(t *testing.T, name string) (*nn.Network, *lut.Table, []primitives.ID) {
	t.Helper()
	net := models.MustBuild(name)
	pl := platform.JetsonTX2Like()
	tab, err := profile.Run(net, profile.NewSimSource(net, pl),
		profile.Options{Mode: primitives.ModeGPGPU, Samples: 3})
	if err != nil {
		t.Fatal(err)
	}
	res := core.Search(tab, core.Config{Episodes: 500, Seed: 1})
	return net, tab, res.Assignment
}

func TestBottlenecksAccounting(t *testing.T) {
	net, tab, assignment := searched(t, "mobilenet-v1")
	reports, err := Bottlenecks(net, tab, assignment)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != tab.NumLayers()-1 {
		t.Fatalf("%d reports for %d layers", len(reports), tab.NumLayers()-1)
	}
	// Shares sum to 1 and are sorted descending.
	var sum float64
	for i, r := range reports {
		sum += r.Share
		if i > 0 && r.Seconds > reports[i-1].Seconds {
			t.Fatal("reports not sorted by cost")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %v", sum)
	}
	// Every layer has a runner-up (all layers here have >= 2 candidates).
	for _, r := range reports {
		if r.RunnerUpPrimitive == "" {
			t.Errorf("layer %s has no runner-up", r.Name)
		}
	}
	out := RenderBottlenecks(reports, 5)
	if strings.Count(out, "%") < 5 {
		t.Error("render should list five layers")
	}
	// Oversized n is clamped.
	RenderBottlenecks(reports, 10_000)
}

func TestBottlenecksValidation(t *testing.T) {
	net, tab, assignment := searched(t, "lenet5")
	other := models.MustBuild("alexnet")
	if _, err := Bottlenecks(other, tab, assignment); err == nil {
		t.Error("network mismatch should error")
	}
	_ = net
}

func TestSensitivityTransferCost(t *testing.T) {
	// As transfers get more expensive, the search should keep fewer
	// layers on the GPU (or at least never more), and the optimized
	// time should not improve.
	net := models.MustBuild("squeezenet")
	base := platform.JetsonTX2Like()
	points, err := Sensitivity(net, base, TransferCost, []float64{0.25, 1, 16}, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	if points[2].GPULayers > points[0].GPULayers {
		t.Errorf("16x transfer cost kept %d GPU layers, cheap transfers %d — offload should shrink",
			points[2].GPULayers, points[0].GPULayers)
	}
	if points[2].Seconds < points[0].Seconds {
		t.Error("making transfers expensive should not speed inference up")
	}
	out := RenderSensitivity(TransferCost, points)
	if !strings.Contains(out, "transfer-cost") {
		t.Error("render missing parameter name")
	}
}

func TestSensitivityGPUSpeed(t *testing.T) {
	net := models.MustBuild("squeezenet")
	base := platform.JetsonTX2Like()
	points, err := Sensitivity(net, base, GPUSpeed, []float64{0.25, 4}, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A 16x faster GPU should yield a faster optimized time.
	if points[1].Seconds >= points[0].Seconds {
		t.Errorf("faster GPU gave %v, slower gave %v", points[1].Seconds, points[0].Seconds)
	}
}

func TestSensitivityValidation(t *testing.T) {
	net := models.MustBuild("lenet5")
	base := platform.JetsonTX2Like()
	if _, err := Sensitivity(net, base, TransferCost, []float64{0}, 10, 1); err == nil {
		t.Error("zero scale should error")
	}
	if _, err := Sensitivity(net, base, Parameter(99), []float64{1}, 10, 1); err == nil {
		t.Error("unknown parameter should error")
	}
	// Default scales path.
	points, err := Sensitivity(net, base, CPUSpeed, nil, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Errorf("default sweep has %d points", len(points))
	}
}

func TestParameterString(t *testing.T) {
	if TransferCost.String() != "transfer-cost" || GPUSpeed.String() != "gpu-speed" || CPUSpeed.String() != "cpu-speed" {
		t.Error("parameter names")
	}
	if !strings.Contains(Parameter(9).String(), "9") {
		t.Error("unknown parameter name")
	}
}
