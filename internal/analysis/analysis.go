// Package analysis provides post-search diagnostics a deployment
// engineer asks for: which layers dominate the optimized inference
// time, what the runner-up primitive would cost per layer, and how
// sensitive the found mapping is to platform parameters (e.g. would a
// faster CPU<->GPU interconnect change what gets offloaded?). The
// sensitivity sweep re-profiles and re-searches at each scale, so it
// reflects the search's actual adaptation, not a fixed mapping.
package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/lut"
	"repro/internal/nn"
	"repro/internal/platform"
	"repro/internal/primitives"
	"repro/internal/profile"
)

// LayerReport is one layer's share of the optimized inference time.
type LayerReport struct {
	// Layer is the layer index; Name its name.
	Layer int
	Name  string
	// Primitive is the chosen implementation.
	Primitive string
	// Seconds is the layer's execution time plus its incoming
	// penalties under the assignment.
	Seconds float64
	// Share is Seconds / total.
	Share float64
	// RunnerUpPrimitive is the best alternative primitive by isolated
	// layer time, with its time.
	RunnerUpPrimitive string
	RunnerUpSeconds   float64
}

// Bottlenecks returns the layers sorted by their share of the total
// assignment cost, largest first, with runner-up alternatives.
func Bottlenecks(net *nn.Network, tab *lut.Table, assignment []primitives.ID) ([]LayerReport, error) {
	if net.Name != tab.Network {
		return nil, fmt.Errorf("analysis: table is for %q, network is %q", tab.Network, net.Name)
	}
	total := tab.TotalTime(assignment)
	reports := make([]LayerReport, 0, tab.NumLayers()-1)
	for i := 1; i < tab.NumLayers(); i++ {
		chosen := assignment[i]
		cost := tab.LayerCost(i, chosen, assignment)
		r := LayerReport{
			Layer:     i,
			Name:      net.Layers[i].Name,
			Primitive: primitives.ByID(chosen).Name,
			Seconds:   cost,
			Share:     cost / total,
		}
		best := math.Inf(1)
		for _, p := range tab.Candidates(i) {
			if p == chosen {
				continue
			}
			if v := tab.Time(i, p); v < best {
				best = v
				r.RunnerUpPrimitive = primitives.ByID(p).Name
				r.RunnerUpSeconds = v
			}
		}
		reports = append(reports, r)
	}
	sort.Slice(reports, func(a, b int) bool { return reports[a].Seconds > reports[b].Seconds })
	return reports, nil
}

// RenderBottlenecks formats the top-n layers.
func RenderBottlenecks(reports []LayerReport, n int) string {
	if n > len(reports) {
		n = len(reports)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "top %d layers by share of optimized inference time:\n", n)
	for _, r := range reports[:n] {
		fmt.Fprintf(&b, "  %5.1f%%  %-28s %-22s %9.4f ms (runner-up %s, %.4f ms)\n",
			r.Share*100, r.Name, r.Primitive, r.Seconds*1e3,
			r.RunnerUpPrimitive, r.RunnerUpSeconds*1e3)
	}
	return b.String()
}

// SensitivityPoint is one step of a platform-parameter sweep.
type SensitivityPoint struct {
	// Scale multiplies the swept parameter.
	Scale float64
	// Seconds is the re-searched optimized inference time.
	Seconds float64
	// GPULayers counts layers mapped to the GPU after re-searching.
	GPULayers int
	// Transfers counts processor crossings in the mapping (including
	// the input edge and the host return).
	Transfers int
}

// Parameter identifies which platform knob a sweep scales.
type Parameter uint8

const (
	// TransferCost scales both the fixed and per-byte transfer cost.
	TransferCost Parameter = iota
	// GPUSpeed scales the GPU's peak throughput.
	GPUSpeed
	// CPUSpeed scales the CPU's peak throughput.
	CPUSpeed
)

// String returns the parameter name.
func (p Parameter) String() string {
	switch p {
	case TransferCost:
		return "transfer-cost"
	case GPUSpeed:
		return "gpu-speed"
	case CPUSpeed:
		return "cpu-speed"
	}
	return fmt.Sprintf("Parameter(%d)", uint8(p))
}

// Sensitivity sweeps one platform parameter across the given scales,
// re-profiling and re-searching at each point, and reports how the
// optimized time and the CPU/GPU split react.
func Sensitivity(net *nn.Network, base *platform.Platform, param Parameter,
	scales []float64, episodes int, seed int64) ([]SensitivityPoint, error) {
	if len(scales) == 0 {
		scales = []float64{0.25, 0.5, 1, 2, 4}
	}
	points := make([]SensitivityPoint, 0, len(scales))
	for _, scale := range scales {
		if scale <= 0 {
			return nil, fmt.Errorf("analysis: non-positive scale %v", scale)
		}
		pl := *base // shallow copy: Spec is by value
		switch param {
		case TransferCost:
			pl.TransferFixedSec *= scale
			pl.TransferGBps /= scale
		case GPUSpeed:
			pl.GPUPeakGFLOPS *= scale
			pl.GPUMemGBps *= scale
		case CPUSpeed:
			pl.CPUPeakGFLOPS *= scale
			pl.CPUMemGBps *= scale
		default:
			return nil, fmt.Errorf("analysis: unknown parameter %v", param)
		}
		tab, err := profile.Run(net, profile.NewSimSource(net, &pl),
			profile.Options{Mode: primitives.ModeGPGPU, Samples: 10})
		if err != nil {
			return nil, err
		}
		res := core.Search(tab, core.Config{Episodes: episodes, Seed: seed})
		pt := SensitivityPoint{Scale: scale, Seconds: res.Time}
		prevProc := primitives.CPU
		for i := 1; i < len(res.Assignment); i++ {
			p := primitives.ByID(res.Assignment[i])
			if p.Proc == primitives.GPU {
				pt.GPULayers++
			}
			if p.Proc != prevProc {
				pt.Transfers++
				prevProc = p.Proc
			}
		}
		if prevProc != primitives.CPU {
			pt.Transfers++ // host return
		}
		points = append(points, pt)
	}
	return points, nil
}

// RenderSensitivity formats a sweep.
func RenderSensitivity(param Parameter, points []SensitivityPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "sensitivity to %s:\n", param)
	for _, p := range points {
		fmt.Fprintf(&b, "  x%-5.2f -> %9.3f ms, %3d GPU layers, %3d transfers\n",
			p.Scale, p.Seconds*1e3, p.GPULayers, p.Transfers)
	}
	return b.String()
}
