package primitives

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/nn"
)

// NOTE: EnableTunedVariants is process-global and idempotent; these
// tests run in the primitives test binary, which has no golden files
// sized by Count(). Packages with committed goldens (internal/core)
// must never call it from tests.

func TestEnableTunedVariants(t *testing.T) {
	base := Count()
	if TunedVariantsEnabled() {
		t.Fatal("tuned variants enabled before EnableTunedVariants")
	}
	var twins []*Primitive
	var wg sync.WaitGroup
	results := make([][]*Primitive, 4)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = EnableTunedVariants()
		}(i)
	}
	wg.Wait()
	twins = results[0]
	if !TunedVariantsEnabled() {
		t.Fatal("TunedVariantsEnabled false after enable")
	}
	if len(twins) == 0 {
		t.Fatal("no twins registered")
	}
	if Count() != base+len(twins) {
		t.Errorf("Count = %d, want %d", Count(), base+len(twins))
	}
	for _, r := range results[1:] {
		if len(r) != len(twins) {
			t.Errorf("concurrent enable returned %d twins, want %d", len(r), len(twins))
		}
	}
	// Idempotent: a second call adds nothing.
	EnableTunedVariants()
	if Count() != base+len(twins) {
		t.Error("EnableTunedVariants is not idempotent")
	}
	for _, tw := range twins {
		if !tw.Tuned {
			t.Errorf("%s: Tuned flag not set", tw.Name)
		}
		if !strings.HasSuffix(tw.Name, TunedSuffix) {
			t.Errorf("twin name %q lacks %q", tw.Name, TunedSuffix)
		}
		b := ByID(tw.Base)
		if b.Tuned || b.Name+TunedSuffix != tw.Name {
			t.Errorf("twin %s has wrong base %s", tw.Name, b.Name)
		}
		if tw.Lib != b.Lib || tw.Algo != b.Algo || tw.Lower != b.Lower || tw.Proc != b.Proc || tw.Layout != b.Layout {
			t.Errorf("twin %s does not mirror base %s", tw.Name, b.Name)
		}
		if got, ok := TunedOf(b.Idx); !ok || got != tw.Idx {
			t.Errorf("TunedOf(%s) = %d, %v", b.Name, got, ok)
		}
		if BaseOf(tw.Idx) != b.Idx || BaseOf(b.Idx) != b.Idx {
			t.Errorf("BaseOf inconsistent for %s", tw.Name)
		}
		if p, ok := ByName(tw.Name); !ok || p != tw {
			t.Errorf("ByName(%q) lookup failed", tw.Name)
		}
	}
}

// TestTunedTwinsNeverInCandidates pins the golden-safety contract:
// default candidate sets are built from the explicit base primitives,
// so enabling twins must not change any layer's candidates.
func TestTunedTwinsNeverInCandidates(t *testing.T) {
	EnableTunedVariants()
	for _, kind := range nn.AllOpKinds() {
		l := layerOfKind(t, kind)
		for _, p := range Candidates(l, ModeGPGPU) {
			if p.Tuned {
				t.Errorf("%v: tuned twin %s leaked into default candidates", kind, p.Name)
			}
		}
	}
}
