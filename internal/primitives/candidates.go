package primitives

import "repro/internal/nn"

// Mode restricts which processors the search may use: the paper's
// Table II reports separate "CPU" and "GPGPU" columns. GPGPU mode
// keeps CPU primitives available — which is how QS-DNN discovers that
// LeNet-5's fastest "GPGPU" configuration is pure CPU.
type Mode uint8

const (
	// ModeCPU allows only CPU primitives.
	ModeCPU Mode = iota
	// ModeGPGPU allows both CPU and GPU primitives.
	ModeGPGPU
)

// String returns the mode name.
func (m Mode) String() string {
	if m == ModeCPU {
		return "CPU"
	}
	return "GPGPU"
}

// isWinogradable reports whether a conv layer fits F(2x2,3x3):
// 3x3 kernel, stride 1.
func isWinogradable(l *nn.Layer) bool {
	p := l.Conv
	return p.KernelH == 3 && p.KernelW == 3 && p.StrideH == 1 && p.StrideW == 1
}

// isFFTable reports whether a conv layer fits NNPACK's FFT path:
// stride 1 with a kernel larger than the Winograd tile (e.g. the 5x5
// Inception branches or AlexNet's conv2).
func isFFTable(l *nn.Layer) bool {
	p := l.Conv
	return p.StrideH == 1 && p.StrideW == 1 &&
		(p.KernelH > 3 || p.KernelW > 3) &&
		p.KernelH <= 16 && p.KernelW <= 16
}

// Candidates returns the primitives able to implement the layer under
// the given mode, in registry order. Every layer supported by the
// engine has at least the Vanilla candidate (Vanilla "contains all
// layers that a DNN may use"); OpInput returns nil.
func Candidates(l *nn.Layer, mode Mode) []*Primitive {
	var out []*Primitive
	add := func(ps ...*Primitive) {
		for _, p := range ps {
			if mode == ModeCPU && p.Proc == GPU {
				continue
			}
			out = append(out, p)
		}
	}
	switch l.Kind {
	case nn.OpInput:
		return nil
	case nn.OpConv:
		if l.Conv.GroupCount() > 1 {
			// Grouped convolutions (AlexNet conv2/4/5): only the
			// direct code and the per-group im2col GEMM paths exist;
			// Winograd/FFT/kn2row implementations do not handle
			// grouping.
			add(PVanilla, PAtlasIm2col, POpenIm2col, PSparseConv, PCuDNNConv)
			break
		}
		add(PVanilla)
		add(PAtlasIm2col, PAtlasIm2row, PAtlasKn2row)
		add(POpenIm2col, POpenIm2row, POpenKn2row)
		switch {
		case isWinogradable(l):
			add(PNNPackWinograd, PArmCLWinograd)
		case isFFTable(l):
			add(PNNPackGemm, PNNPackFFT)
		default:
			add(PNNPackGemm)
		}
		add(PArmCLGemm, PSparseConv)
		if isWinogradable(l) {
			add(PCuDNNWino)
		}
		add(PCuDNNConv)
	case nn.OpDepthwiseConv:
		add(PVanilla, POpenIm2col, PArmCLDepth, PCuDNNDepth)
	case nn.OpFullyConnected:
		// cuDNN deliberately absent: it has no FC primitive.
		add(PVanilla, PAtlasGemv, POpenGemv, PSparseFC, PCuBLASGemv)
	case nn.OpPool, nn.OpReLU, nn.OpSoftmax:
		add(PVanilla, PNNPackOp, PCuDNNOp)
	case nn.OpBatchNorm, nn.OpLRN, nn.OpEltwiseAdd, nn.OpConcat:
		add(PVanilla, PCuDNNOp)
	case nn.OpFlatten, nn.OpDropout:
		add(PVanilla, PCuDNNOp)
	default:
		add(PVanilla)
	}
	return out
}

// MaxCandidates returns the largest candidate-set size over the
// network's searchable layers — the paper reports 13 as the maximum
// number of primitive variants for a layer.
func MaxCandidates(n *nn.Network, mode Mode) int {
	maxN := 0
	for _, l := range n.Layers {
		if c := len(Candidates(l, mode)); c > maxN {
			maxN = c
		}
	}
	return maxN
}

// SpaceSize returns the design-space size, i.e. the product of
// candidate-set sizes over all searchable layers, as a float64 (the
// worst case the paper writes as NI^NL grows past int64 quickly).
func SpaceSize(n *nn.Network, mode Mode) float64 {
	size := 1.0
	for _, l := range n.Layers {
		if l.Kind == nn.OpInput {
			continue
		}
		size *= float64(len(Candidates(l, mode)))
	}
	return size
}

// LibrarySupports reports whether a library has any primitive able to
// implement the layer — used by the profiling phase, which substitutes
// one library at a time into every layer it supports.
func LibrarySupports(lib Library, l *nn.Layer, mode Mode) bool {
	for _, p := range Candidates(l, mode) {
		if p.Lib == lib {
			return true
		}
	}
	return false
}

// LibraryPrimitive returns the library's preferred primitive for the
// layer (the first candidate in registry order — for BLAS libraries
// the profiling phase iterates all lowerings explicitly; this helper
// picks the representative used for whole-library substitution).
func LibraryPrimitive(lib Library, l *nn.Layer, mode Mode) (*Primitive, bool) {
	for _, p := range Candidates(l, mode) {
		if p.Lib == lib {
			return p, true
		}
	}
	return nil, false
}
