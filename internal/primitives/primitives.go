// Package primitives models §III-B of the paper: the acceleration
// libraries available to the inference engine optimizer (Vanilla,
// ATLAS, OpenBLAS, NNPACK, ArmCL, Sparse, cuDNN, cuBLAS), the
// primitives each provides, and which layers each primitive can
// implement. The per-layer candidate sets generated here are the
// action space of the Q-learning agent; the registry caps at 13
// variants for a layer, matching the paper's reported maximum.
package primitives

import (
	"fmt"

	"repro/internal/tensor"
)

// Processor identifies where a primitive executes. Assigning adjacent
// layers to different processors costs a memory transfer.
type Processor uint8

const (
	// CPU is the single-threaded ARM A57-class core.
	CPU Processor = iota
	// GPU is the Pascal-class GPGPU.
	GPU
)

// String returns the processor name.
func (p Processor) String() string {
	if p == CPU {
		return "CPU"
	}
	return "GPU"
}

// Library identifies the acceleration library a primitive belongs to.
type Library uint8

const (
	// Vanilla is the dependency-free ANSI-C-style baseline that
	// implements every layer type (the paper's portability floor and
	// the denominator of every Table II speedup).
	Vanilla Library = iota
	// ATLAS is the auto-tuned BLAS (GEMM/GEMV via lowering methods).
	ATLAS
	// OpenBLAS is the hand-tuned BLAS (GEMM/GEMV via lowering methods).
	OpenBLAS
	// NNPACK provides low-level CPU performance primitives for
	// specific DL layers.
	NNPACK
	// ArmCL is Arm Compute Library: Winograd and GEMM routines for
	// convolution plus specialized depth-wise code.
	ArmCL
	// Sparse keeps pruned conv/FC weights compressed (CSR) in memory.
	Sparse
	// CuDNN provides optimized GPU primitives for most DNN layers —
	// but, as the paper stresses, no fully-connected primitive.
	CuDNN
	// CuBLAS provides the GPU GEMV routine used for FC layers.
	CuBLAS
)

var libNames = [...]string{"Vanilla", "ATLAS", "OpenBLAS", "NNPACK", "ArmCL", "Sparse", "cuDNN", "cuBLAS"}

// String returns the library name.
func (l Library) String() string {
	if int(l) < len(libNames) {
		return libNames[l]
	}
	return fmt.Sprintf("Library(%d)", uint8(l))
}

// AllLibraries lists every acceleration library.
func AllLibraries() []Library {
	return []Library{Vanilla, ATLAS, OpenBLAS, NNPACK, ArmCL, Sparse, CuDNN, CuBLAS}
}

// Algorithm is the routine type a primitive uses (Table I's
// "Algorithm" state parameter).
type Algorithm uint8

const (
	// Direct is a straightforward nested-loop implementation.
	Direct Algorithm = iota
	// GEMMAlgo lowers the operation to a matrix multiply.
	GEMMAlgo
	// GEMVAlgo lowers a batch-1 FC layer to a matrix-vector multiply.
	GEMVAlgo
	// WinogradAlgo is the F(2x2,3x3) fast convolution.
	WinogradAlgo
	// SpatialDW is code specialized for depth-wise convolution.
	SpatialDW
	// SparseAlgo operates on CSR-compressed weights.
	SparseAlgo
	// FFTAlgo computes stride-1 convolutions in the frequency domain
	// (NNPACK's path for kernels too large for Winograd tiles).
	FFTAlgo
)

var algoNames = [...]string{"direct", "gemm", "gemv", "winograd", "spatial-dw", "sparse", "fft"}

// String returns the algorithm name.
func (a Algorithm) String() string {
	if int(a) < len(algoNames) {
		return algoNames[a]
	}
	return fmt.Sprintf("Algorithm(%d)", uint8(a))
}

// Lowering is the matrix-lowering method of BLAS-backed convolutions
// (Table I's "Algorithm impl" state parameter).
type Lowering uint8

const (
	// NoLowering means the primitive does not lower to a matrix form.
	NoLowering Lowering = iota
	// Im2col materializes patches as columns.
	Im2col
	// Im2row materializes patches as rows.
	Im2row
	// Kn2row decomposes the kernel into per-offset 1x1 GEMMs.
	Kn2row
)

var lowNames = [...]string{"", "im2col", "im2row", "kn2row"}

// String returns the lowering name ("" for none).
func (l Lowering) String() string {
	if int(l) < len(lowNames) {
		return lowNames[l]
	}
	return fmt.Sprintf("Lowering(%d)", uint8(l))
}

// ID indexes a primitive in the global registry; it is the compact key
// the Q-table and look-up table use.
type ID int

// Primitive is one executable implementation choice: a library routine
// with its algorithm, lowering, processor and required tensor layout.
// Together with the layer position these are exactly the state-space
// parameters of the paper's Table I.
type Primitive struct {
	// Idx is the registry index.
	Idx ID
	// Name is the stable human-readable identifier, e.g.
	// "openblas-gemm-im2col".
	Name string
	// Lib is the owning acceleration library.
	Lib Library
	// Algo is the routine type.
	Algo Algorithm
	// Lower is the lowering method (BLAS convolutions only).
	Lower Lowering
	// Proc is the processor the primitive runs on.
	Proc Processor
	// Layout is the activation layout the primitive requires for both
	// input and output.
	Layout tensor.Layout
}

// String returns the primitive name.
func (p *Primitive) String() string { return p.Name }

// registry is the fixed global primitive table, built at init.
var registry []*Primitive
var byName = map[string]*Primitive{}

func reg(name string, lib Library, algo Algorithm, lower Lowering, proc Processor, layout tensor.Layout) *Primitive {
	p := &Primitive{
		Idx:  ID(len(registry)),
		Name: name, Lib: lib, Algo: algo, Lower: lower, Proc: proc, Layout: layout,
	}
	registry = append(registry, p)
	byName[name] = p
	return p
}

// The primitive instances. Grouped by library; layouts follow the
// library's native preference (BLAS/cuDNN planar NCHW, NNPACK/ArmCL
// interleaved NHWC) so that mixing libraries costs real conversions.
var (
	PVanilla = reg("vanilla-direct", Vanilla, Direct, NoLowering, CPU, tensor.NCHW)

	PAtlasIm2col = reg("atlas-gemm-im2col", ATLAS, GEMMAlgo, Im2col, CPU, tensor.NCHW)
	PAtlasIm2row = reg("atlas-gemm-im2row", ATLAS, GEMMAlgo, Im2row, CPU, tensor.NCHW)
	PAtlasKn2row = reg("atlas-gemm-kn2row", ATLAS, GEMMAlgo, Kn2row, CPU, tensor.NCHW)
	PAtlasGemv   = reg("atlas-gemv", ATLAS, GEMVAlgo, NoLowering, CPU, tensor.NCHW)

	POpenIm2col = reg("openblas-gemm-im2col", OpenBLAS, GEMMAlgo, Im2col, CPU, tensor.NCHW)
	POpenIm2row = reg("openblas-gemm-im2row", OpenBLAS, GEMMAlgo, Im2row, CPU, tensor.NCHW)
	POpenKn2row = reg("openblas-gemm-kn2row", OpenBLAS, GEMMAlgo, Kn2row, CPU, tensor.NCHW)
	POpenGemv   = reg("openblas-gemv", OpenBLAS, GEMVAlgo, NoLowering, CPU, tensor.NCHW)

	PNNPackWinograd = reg("nnpack-winograd", NNPACK, WinogradAlgo, NoLowering, CPU, tensor.NHWC)
	PNNPackGemm     = reg("nnpack-gemm", NNPACK, GEMMAlgo, NoLowering, CPU, tensor.NHWC)
	PNNPackFFT      = reg("nnpack-fft", NNPACK, FFTAlgo, NoLowering, CPU, tensor.NHWC)
	PNNPackOp       = reg("nnpack-op", NNPACK, Direct, NoLowering, CPU, tensor.NHWC)

	PArmCLWinograd = reg("armcl-winograd", ArmCL, WinogradAlgo, NoLowering, CPU, tensor.NHWC)
	PArmCLGemm     = reg("armcl-gemm", ArmCL, GEMMAlgo, NoLowering, CPU, tensor.NHWC)
	PArmCLDepth    = reg("armcl-depthwise", ArmCL, SpatialDW, NoLowering, CPU, tensor.NHWC)

	PSparseConv = reg("sparse-conv", Sparse, SparseAlgo, Im2col, CPU, tensor.NCHW)
	PSparseFC   = reg("sparse-fc", Sparse, SparseAlgo, NoLowering, CPU, tensor.NCHW)

	PCuDNNConv  = reg("cudnn-conv", CuDNN, GEMMAlgo, NoLowering, GPU, tensor.NCHW)
	PCuDNNWino  = reg("cudnn-winograd", CuDNN, WinogradAlgo, NoLowering, GPU, tensor.NCHW)
	PCuDNNDepth = reg("cudnn-depthwise", CuDNN, SpatialDW, NoLowering, GPU, tensor.NCHW)
	PCuDNNOp    = reg("cudnn-op", CuDNN, Direct, NoLowering, GPU, tensor.NCHW)

	PCuBLASGemv = reg("cublas-gemv", CuBLAS, GEMVAlgo, NoLowering, GPU, tensor.NCHW)
)

// Registry returns the full primitive table in index order. The
// returned slice must not be modified.
func Registry() []*Primitive { return registry }

// ByName looks a primitive up by its stable name.
func ByName(name string) (*Primitive, bool) {
	p, ok := byName[name]
	return p, ok
}

// ByID returns the primitive with the given registry index.
func ByID(id ID) *Primitive {
	if int(id) < 0 || int(id) >= len(registry) {
		panic(fmt.Sprintf("primitives: id %d out of range", id))
	}
	return registry[id]
}

// Count returns the registry size.
func Count() int { return len(registry) }
