// Package primitives models §III-B of the paper: the acceleration
// libraries available to the inference engine optimizer (Vanilla,
// ATLAS, OpenBLAS, NNPACK, ArmCL, Sparse, cuDNN, cuBLAS), the
// primitives each provides, and which layers each primitive can
// implement. The per-layer candidate sets generated here are the
// action space of the Q-learning agent; the registry caps at 13
// variants for a layer, matching the paper's reported maximum.
package primitives

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/tensor"
)

// Processor identifies where a primitive executes. Assigning adjacent
// layers to different processors costs a memory transfer.
type Processor uint8

const (
	// CPU is the single-threaded ARM A57-class core.
	CPU Processor = iota
	// GPU is the Pascal-class GPGPU.
	GPU
)

// String returns the processor name.
func (p Processor) String() string {
	if p == CPU {
		return "CPU"
	}
	return "GPU"
}

// Library identifies the acceleration library a primitive belongs to.
type Library uint8

const (
	// Vanilla is the dependency-free ANSI-C-style baseline that
	// implements every layer type (the paper's portability floor and
	// the denominator of every Table II speedup).
	Vanilla Library = iota
	// ATLAS is the auto-tuned BLAS (GEMM/GEMV via lowering methods).
	ATLAS
	// OpenBLAS is the hand-tuned BLAS (GEMM/GEMV via lowering methods).
	OpenBLAS
	// NNPACK provides low-level CPU performance primitives for
	// specific DL layers.
	NNPACK
	// ArmCL is Arm Compute Library: Winograd and GEMM routines for
	// convolution plus specialized depth-wise code.
	ArmCL
	// Sparse keeps pruned conv/FC weights compressed (CSR) in memory.
	Sparse
	// CuDNN provides optimized GPU primitives for most DNN layers —
	// but, as the paper stresses, no fully-connected primitive.
	CuDNN
	// CuBLAS provides the GPU GEMV routine used for FC layers.
	CuBLAS
)

var libNames = [...]string{"Vanilla", "ATLAS", "OpenBLAS", "NNPACK", "ArmCL", "Sparse", "cuDNN", "cuBLAS"}

// String returns the library name.
func (l Library) String() string {
	if int(l) < len(libNames) {
		return libNames[l]
	}
	return fmt.Sprintf("Library(%d)", uint8(l))
}

// AllLibraries lists every acceleration library.
func AllLibraries() []Library {
	return []Library{Vanilla, ATLAS, OpenBLAS, NNPACK, ArmCL, Sparse, CuDNN, CuBLAS}
}

// Algorithm is the routine type a primitive uses (Table I's
// "Algorithm" state parameter).
type Algorithm uint8

const (
	// Direct is a straightforward nested-loop implementation.
	Direct Algorithm = iota
	// GEMMAlgo lowers the operation to a matrix multiply.
	GEMMAlgo
	// GEMVAlgo lowers a batch-1 FC layer to a matrix-vector multiply.
	GEMVAlgo
	// WinogradAlgo is the F(2x2,3x3) fast convolution.
	WinogradAlgo
	// SpatialDW is code specialized for depth-wise convolution.
	SpatialDW
	// SparseAlgo operates on CSR-compressed weights.
	SparseAlgo
	// FFTAlgo computes stride-1 convolutions in the frequency domain
	// (NNPACK's path for kernels too large for Winograd tiles).
	FFTAlgo
)

var algoNames = [...]string{"direct", "gemm", "gemv", "winograd", "spatial-dw", "sparse", "fft"}

// String returns the algorithm name.
func (a Algorithm) String() string {
	if int(a) < len(algoNames) {
		return algoNames[a]
	}
	return fmt.Sprintf("Algorithm(%d)", uint8(a))
}

// Lowering is the matrix-lowering method of BLAS-backed convolutions
// (Table I's "Algorithm impl" state parameter).
type Lowering uint8

const (
	// NoLowering means the primitive does not lower to a matrix form.
	NoLowering Lowering = iota
	// Im2col materializes patches as columns.
	Im2col
	// Im2row materializes patches as rows.
	Im2row
	// Kn2row decomposes the kernel into per-offset 1x1 GEMMs.
	Kn2row
)

var lowNames = [...]string{"", "im2col", "im2row", "kn2row"}

// String returns the lowering name ("" for none).
func (l Lowering) String() string {
	if int(l) < len(lowNames) {
		return lowNames[l]
	}
	return fmt.Sprintf("Lowering(%d)", uint8(l))
}

// ID indexes a primitive in the global registry; it is the compact key
// the Q-table and look-up table use.
type ID int

// Primitive is one executable implementation choice: a library routine
// with its algorithm, lowering, processor and required tensor layout.
// Together with the layer position these are exactly the state-space
// parameters of the paper's Table I.
type Primitive struct {
	// Idx is the registry index.
	Idx ID
	// Name is the stable human-readable identifier, e.g.
	// "openblas-gemm-im2col".
	Name string
	// Lib is the owning acceleration library.
	Lib Library
	// Algo is the routine type.
	Algo Algorithm
	// Lower is the lowering method (BLAS convolutions only).
	Lower Lowering
	// Proc is the processor the primitive runs on.
	Proc Processor
	// Layout is the activation layout the primitive requires for both
	// input and output.
	Layout tensor.Layout
	// Tuned marks an autotuner twin: a copy of the primitive at Base
	// whose per-layer execution parameters (cache blocking,
	// micro-kernel, panel width, workers) come from a tuning cache
	// instead of the defaults. Twins exist only after
	// EnableTunedVariants and never appear in default candidate sets.
	Tuned bool
	// Base is the registry index of the primitive a tuned twin
	// parameterizes (equal to Idx for ordinary primitives).
	Base ID
}

// String returns the primitive name.
func (p *Primitive) String() string { return p.Name }

// regState is one immutable snapshot of the primitive table. The
// active snapshot is swapped atomically (copy-on-write) so that
// EnableTunedVariants can extend the table while concurrent readers
// (serve handlers, profiling goroutines) keep a consistent view — a
// reader either sees the table with all tuned twins or with none.
type regState struct {
	prims  []*Primitive
	byName map[string]*Primitive
}

var regp atomic.Pointer[regState]

// registry and byName accumulate the fixed base table during package
// initialization; init() below publishes them as the first snapshot.
var registry []*Primitive
var byName = map[string]*Primitive{}

func reg(name string, lib Library, algo Algorithm, lower Lowering, proc Processor, layout tensor.Layout) *Primitive {
	p := &Primitive{
		Idx:  ID(len(registry)),
		Name: name, Lib: lib, Algo: algo, Lower: lower, Proc: proc, Layout: layout,
	}
	p.Base = p.Idx
	registry = append(registry, p)
	byName[name] = p
	return p
}

func init() {
	regp.Store(&regState{prims: registry, byName: byName})
}

// The primitive instances. Grouped by library; layouts follow the
// library's native preference (BLAS/cuDNN planar NCHW, NNPACK/ArmCL
// interleaved NHWC) so that mixing libraries costs real conversions.
var (
	PVanilla = reg("vanilla-direct", Vanilla, Direct, NoLowering, CPU, tensor.NCHW)

	PAtlasIm2col = reg("atlas-gemm-im2col", ATLAS, GEMMAlgo, Im2col, CPU, tensor.NCHW)
	PAtlasIm2row = reg("atlas-gemm-im2row", ATLAS, GEMMAlgo, Im2row, CPU, tensor.NCHW)
	PAtlasKn2row = reg("atlas-gemm-kn2row", ATLAS, GEMMAlgo, Kn2row, CPU, tensor.NCHW)
	PAtlasGemv   = reg("atlas-gemv", ATLAS, GEMVAlgo, NoLowering, CPU, tensor.NCHW)

	POpenIm2col = reg("openblas-gemm-im2col", OpenBLAS, GEMMAlgo, Im2col, CPU, tensor.NCHW)
	POpenIm2row = reg("openblas-gemm-im2row", OpenBLAS, GEMMAlgo, Im2row, CPU, tensor.NCHW)
	POpenKn2row = reg("openblas-gemm-kn2row", OpenBLAS, GEMMAlgo, Kn2row, CPU, tensor.NCHW)
	POpenGemv   = reg("openblas-gemv", OpenBLAS, GEMVAlgo, NoLowering, CPU, tensor.NCHW)

	PNNPackWinograd = reg("nnpack-winograd", NNPACK, WinogradAlgo, NoLowering, CPU, tensor.NHWC)
	PNNPackGemm     = reg("nnpack-gemm", NNPACK, GEMMAlgo, NoLowering, CPU, tensor.NHWC)
	PNNPackFFT      = reg("nnpack-fft", NNPACK, FFTAlgo, NoLowering, CPU, tensor.NHWC)
	PNNPackOp       = reg("nnpack-op", NNPACK, Direct, NoLowering, CPU, tensor.NHWC)

	PArmCLWinograd = reg("armcl-winograd", ArmCL, WinogradAlgo, NoLowering, CPU, tensor.NHWC)
	PArmCLGemm     = reg("armcl-gemm", ArmCL, GEMMAlgo, NoLowering, CPU, tensor.NHWC)
	PArmCLDepth    = reg("armcl-depthwise", ArmCL, SpatialDW, NoLowering, CPU, tensor.NHWC)

	PSparseConv = reg("sparse-conv", Sparse, SparseAlgo, Im2col, CPU, tensor.NCHW)
	PSparseFC   = reg("sparse-fc", Sparse, SparseAlgo, NoLowering, CPU, tensor.NCHW)

	PCuDNNConv  = reg("cudnn-conv", CuDNN, GEMMAlgo, NoLowering, GPU, tensor.NCHW)
	PCuDNNWino  = reg("cudnn-winograd", CuDNN, WinogradAlgo, NoLowering, GPU, tensor.NCHW)
	PCuDNNDepth = reg("cudnn-depthwise", CuDNN, SpatialDW, NoLowering, GPU, tensor.NCHW)
	PCuDNNOp    = reg("cudnn-op", CuDNN, Direct, NoLowering, GPU, tensor.NCHW)

	PCuBLASGemv = reg("cublas-gemv", CuBLAS, GEMVAlgo, NoLowering, GPU, tensor.NCHW)
)

// Registry returns the full primitive table in index order. The
// returned slice must not be modified.
func Registry() []*Primitive { return regp.Load().prims }

// ByName looks a primitive up by its stable name.
func ByName(name string) (*Primitive, bool) {
	p, ok := regp.Load().byName[name]
	return p, ok
}

// ByID returns the primitive with the given registry index.
func ByID(id ID) *Primitive {
	prims := regp.Load().prims
	if int(id) < 0 || int(id) >= len(prims) {
		panic(fmt.Sprintf("primitives: id %d out of range", id))
	}
	return prims[id]
}

// Count returns the registry size.
func Count() int { return len(regp.Load().prims) }

// TunedSuffix distinguishes an autotuner twin's name from its base
// primitive's ("openblas-gemm-im2col" -> "openblas-gemm-im2col#tuned").
const TunedSuffix = "#tuned"

// tunedBases lists the primitives that get autotuner twins: the
// packed-GEMM lowering paths whose blocking, micro-kernel, panel width
// and worker count internal/tune can actually vary.
var tunedBases = []*Primitive{POpenIm2col, POpenIm2row, POpenKn2row}

var enableTunedOnce sync.Once

// EnableTunedVariants extends the registry with one tuned twin per
// tunable base primitive and returns the twins in registration order.
// It is idempotent and safe for concurrent use.
//
// Twins are registered on demand — never at init — because the
// registry size is serialized state: Q-table checkpoints and LUT
// penalty matrices are sized by Count(), and the committed goldens pin
// the 22-primitive base table. Only code paths that opted into
// autotuning (-autotune, -tuner-cache) ever see the extended table;
// the default path stays byte-identical. Candidate sets are built from
// the explicit base primitives (see Candidates), so twins never enter
// a search unless a tuning cache adds them via lut.AddCandidate.
func EnableTunedVariants() []*Primitive {
	enableTunedOnce.Do(func() {
		old := regp.Load()
		prims := append([]*Primitive(nil), old.prims...)
		names := make(map[string]*Primitive, len(old.byName)+len(tunedBases))
		for k, v := range old.byName {
			names[k] = v
		}
		for _, base := range tunedBases {
			t := *base
			t.Idx = ID(len(prims))
			t.Name = base.Name + TunedSuffix
			t.Tuned = true
			t.Base = base.Idx
			tp := &t
			prims = append(prims, tp)
			names[tp.Name] = tp
		}
		regp.Store(&regState{prims: prims, byName: names})
	})
	twins := make([]*Primitive, 0, len(tunedBases))
	for _, p := range regp.Load().prims {
		if p.Tuned {
			twins = append(twins, p)
		}
	}
	return twins
}

// TunedVariantsEnabled reports whether EnableTunedVariants has run.
func TunedVariantsEnabled() bool {
	return len(regp.Load().prims) > len(registry)
}

// TunedOf returns the tuned twin of the given base primitive, or ok
// false if the base has no twin (or twins are not enabled).
func TunedOf(base ID) (ID, bool) {
	for _, p := range regp.Load().prims {
		if p.Tuned && p.Base == base {
			return p.Idx, true
		}
	}
	return 0, false
}

// BaseOf resolves a tuned twin to its base primitive; ordinary
// primitives resolve to themselves.
func BaseOf(id ID) ID { return ByID(id).Base }
