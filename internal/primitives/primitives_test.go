package primitives

import (
	"testing"

	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func layerOfKind(t *testing.T, kind nn.OpKind) *nn.Layer {
	t.Helper()
	b := nn.NewBuilder("probe", tensor.Shape{N: 1, C: 8, H: 14, W: 14})
	x := b.Input()
	switch kind {
	case nn.OpConv:
		x = b.Conv("l", x, 16, 3, 1, 1)
	case nn.OpDepthwiseConv:
		x = b.DepthwiseConv("l", x, 3, 1, 1)
	case nn.OpFullyConnected:
		x = b.Flatten("f", x)
		x = b.FullyConnected("l", x, 10)
	case nn.OpPool:
		x = b.Pool("l", x, nn.MaxPool, 2, 2, 0)
	case nn.OpReLU:
		x = b.ReLU("l", x)
	case nn.OpBatchNorm:
		x = b.BatchNorm("l", x)
	case nn.OpLRN:
		x = b.LRN("l", x, 5)
	case nn.OpSoftmax:
		x = b.Softmax("l", x)
	case nn.OpConcat:
		y := b.ReLU("r", x)
		x = b.Concat("l", x, y)
	case nn.OpEltwiseAdd:
		y := b.ReLU("r", x)
		x = b.EltwiseAdd("l", x, y)
	case nn.OpFlatten:
		x = b.Flatten("l", x)
	case nn.OpDropout:
		x = b.Dropout("l", x)
	}
	net := b.MustBuild()
	return net.Layers[net.LayerIndex("l")]
}

func TestRegistryUnique(t *testing.T) {
	seen := map[string]bool{}
	for i, p := range Registry() {
		if int(p.Idx) != i {
			t.Errorf("%s: Idx %d != position %d", p.Name, p.Idx, i)
		}
		if seen[p.Name] {
			t.Errorf("duplicate primitive name %q", p.Name)
		}
		seen[p.Name] = true
		got, ok := ByName(p.Name)
		if !ok || got != p {
			t.Errorf("ByName(%q) lookup failed", p.Name)
		}
		if ByID(p.Idx) != p {
			t.Errorf("ByID(%d) lookup failed", p.Idx)
		}
	}
	if Count() != len(Registry()) {
		t.Error("Count mismatch")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName should miss on unknown name")
	}
}

func TestByIDPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ByID out of range should panic")
		}
	}()
	ByID(ID(Count()))
}

func TestEveryLayerKindHasVanilla(t *testing.T) {
	for _, kind := range nn.AllOpKinds() {
		l := layerOfKind(t, kind)
		cands := Candidates(l, ModeCPU)
		if len(cands) == 0 {
			t.Errorf("%v: no candidates", kind)
			continue
		}
		found := false
		for _, p := range cands {
			if p.Lib == Vanilla {
				found = true
			}
		}
		if !found {
			t.Errorf("%v: Vanilla missing from candidates", kind)
		}
	}
}

func TestInputHasNoCandidates(t *testing.T) {
	b := nn.NewBuilder("p", tensor.Shape{N: 1, C: 1, H: 2, W: 2})
	b.ReLU("r", b.Input())
	net := b.MustBuild()
	if got := Candidates(net.Layers[0], ModeGPGPU); got != nil {
		t.Errorf("input candidates = %v", got)
	}
}

func TestCPUModeExcludesGPU(t *testing.T) {
	for _, kind := range nn.AllOpKinds() {
		l := layerOfKind(t, kind)
		for _, p := range Candidates(l, ModeCPU) {
			if p.Proc == GPU {
				t.Errorf("%v: GPU primitive %s in CPU mode", kind, p.Name)
			}
		}
	}
}

func TestConv3x3HasThirteenVariants(t *testing.T) {
	l := layerOfKind(t, nn.OpConv)
	if got := len(Candidates(l, ModeGPGPU)); got != 13 {
		t.Errorf("3x3 s1 conv candidates = %d, want 13 (paper's maximum)", got)
	}
}

func TestMaxCandidatesIsThirteen(t *testing.T) {
	// The paper: "the maximum number of different primitives for a
	// layer, taking all the variants, is 13".
	for _, name := range models.TableIINetworks() {
		n := models.MustBuild(name)
		if got := MaxCandidates(n, ModeGPGPU); got > 13 {
			t.Errorf("%s: max candidates = %d > 13", name, got)
		}
	}
	if got := MaxCandidates(models.MustBuild("vgg19"), ModeGPGPU); got != 13 {
		t.Errorf("vgg19 max candidates = %d, want 13", got)
	}
}

func TestFCHasNoCuDNN(t *testing.T) {
	l := layerOfKind(t, nn.OpFullyConnected)
	for _, p := range Candidates(l, ModeGPGPU) {
		if p.Lib == CuDNN {
			t.Errorf("cuDNN must not offer an FC primitive (got %s)", p.Name)
		}
	}
	// But cuBLAS GEMV must be there.
	found := false
	for _, p := range Candidates(l, ModeGPGPU) {
		if p.Lib == CuBLAS {
			found = true
		}
	}
	if !found {
		t.Error("cuBLAS GEMV missing from FC candidates")
	}
}

func TestWinogradOnlyFor3x3Stride1(t *testing.T) {
	b := nn.NewBuilder("p", tensor.Shape{N: 1, C: 8, H: 14, W: 14})
	b.Conv("c5", b.Input(), 16, 5, 1, 2)
	b.Conv("c3s2", b.Input(), 16, 3, 2, 1)
	b.Conv("c3s1", b.Input(), 16, 3, 1, 1)
	net := b.MustBuild()
	for _, name := range []string{"c5", "c3s2"} {
		for _, p := range Candidates(net.Layers[net.LayerIndex(name)], ModeGPGPU) {
			if p.Algo == WinogradAlgo {
				t.Errorf("%s: winograd offered for non-3x3s1 conv", name)
			}
		}
	}
	hasWino := false
	for _, p := range Candidates(net.Layers[net.LayerIndex("c3s1")], ModeGPGPU) {
		if p.Algo == WinogradAlgo {
			hasWino = true
		}
	}
	if !hasWino {
		t.Error("3x3 s1 conv should offer winograd")
	}
}

func TestFFTOnlyForLargeStride1Kernels(t *testing.T) {
	b := nn.NewBuilder("p", tensor.Shape{N: 1, C: 8, H: 14, W: 14})
	b.Conv("c5s1", b.Input(), 16, 5, 1, 2)   // FFT applies
	b.Conv("c3s1", b.Input(), 16, 3, 1, 1)   // winograd instead
	b.Conv("c5s2", b.Input(), 16, 5, 2, 2)   // neither (stride 2)
	b.Conv("c11s1", b.Input(), 16, 11, 1, 5) // FFT applies
	net := b.MustBuild()
	hasFFT := func(name string) bool {
		for _, p := range Candidates(net.Layers[net.LayerIndex(name)], ModeCPU) {
			if p.Algo == FFTAlgo {
				return true
			}
		}
		return false
	}
	if !hasFFT("c5s1") || !hasFFT("c11s1") {
		t.Error("stride-1 large-kernel convs should offer nnpack-fft")
	}
	if hasFFT("c3s1") {
		t.Error("3x3 s1 conv should use winograd, not fft")
	}
	if hasFFT("c5s2") {
		t.Error("strided conv should not offer fft")
	}
}

func TestDepthwiseHasArmCL(t *testing.T) {
	l := layerOfKind(t, nn.OpDepthwiseConv)
	found := false
	for _, p := range Candidates(l, ModeGPGPU) {
		if p == PArmCLDepth {
			found = true
		}
	}
	if !found {
		t.Error("ArmCL depthwise primitive missing")
	}
}

func TestSpaceSizeGrowsWithNetwork(t *testing.T) {
	small := SpaceSize(models.MustBuild("lenet5"), ModeGPGPU)
	big := SpaceSize(models.MustBuild("googlenet"), ModeGPGPU)
	if small <= 1 {
		t.Errorf("lenet5 space = %v", small)
	}
	if big <= small {
		t.Errorf("googlenet space %v should exceed lenet5 %v", big, small)
	}
	cpu := SpaceSize(models.MustBuild("lenet5"), ModeCPU)
	if cpu >= small {
		t.Errorf("CPU-only space %v should be smaller than GPGPU %v", cpu, small)
	}
}

func TestLibrarySupports(t *testing.T) {
	conv := layerOfKind(t, nn.OpConv)
	fc := layerOfKind(t, nn.OpFullyConnected)
	if !LibrarySupports(CuDNN, conv, ModeGPGPU) {
		t.Error("cuDNN should support conv")
	}
	if LibrarySupports(CuDNN, fc, ModeGPGPU) {
		t.Error("cuDNN should not support FC")
	}
	if LibrarySupports(CuBLAS, conv, ModeGPGPU) {
		t.Error("cuBLAS should not support conv")
	}
	p, ok := LibraryPrimitive(ArmCL, conv, ModeCPU)
	if !ok || p.Lib != ArmCL {
		t.Errorf("LibraryPrimitive(ArmCL, conv) = %v, %v", p, ok)
	}
	if _, ok := LibraryPrimitive(CuBLAS, conv, ModeGPGPU); ok {
		t.Error("LibraryPrimitive should miss for unsupported combos")
	}
}

func TestStringers(t *testing.T) {
	if CPU.String() != "CPU" || GPU.String() != "GPU" {
		t.Error("processor names")
	}
	if ModeCPU.String() != "CPU" || ModeGPGPU.String() != "GPGPU" {
		t.Error("mode names")
	}
	if Vanilla.String() != "Vanilla" || CuDNN.String() != "cuDNN" {
		t.Error("library names")
	}
	if WinogradAlgo.String() != "winograd" || Im2col.String() != "im2col" {
		t.Error("algo/lowering names")
	}
	if len(AllLibraries()) != 8 {
		t.Error("library count")
	}
}
