package resilience

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrOpen is the sentinel wrapped by every fast-fail an open breaker
// issues. errors.Is(err, ErrOpen) identifies breaker rejections.
var ErrOpen = errors.New("resilience: circuit breaker open")

// OpenError is the concrete fast-fail error. It names the tripped
// source and implements NoRetry so profile.Robust skips its retry loop:
// retrying against a breaker that already knows the backend is down
// only burns deadline budget.
type OpenError struct {
	Platform string
	Library  string
}

func (e *OpenError) Error() string {
	return fmt.Sprintf("resilience: breaker open for %s/%s", e.Platform, e.Library)
}

func (e *OpenError) Unwrap() error { return ErrOpen }

// NoRetry marks the error as non-retryable for profile.Robust.
func (e *OpenError) NoRetry() bool { return true }

// State is a breaker's position in the closed → open → half-open cycle.
type State int32

const (
	// Closed: requests flow, failures are counted.
	Closed State = iota
	// Open: requests fast-fail until the cooldown elapses.
	Open
	// HalfOpen: a bounded number of probes are admitted; the rest
	// fast-fail. Probe successes close the breaker, one probe failure
	// re-opens it.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// MarshalText lets State render as its name in JSON status payloads.
func (s State) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// BreakerConfig tunes the trip and recovery thresholds shared by every
// breaker in a BreakerSet. The zero value of each field selects the
// default noted on it.
type BreakerConfig struct {
	// FailureThreshold trips the breaker after this many consecutive
	// failures. Default 5.
	FailureThreshold int
	// ErrorRate additionally trips the breaker when the failure
	// fraction over the last Window outcomes reaches this value and at
	// least MinRequests outcomes have been observed. 0 disables
	// rate-based tripping.
	ErrorRate float64
	// Window is the ring size for rate-based tripping. Default 20.
	Window int
	// MinRequests gates rate-based tripping until the window has seen
	// this many outcomes. Default Window/2.
	MinRequests int
	// Cooldown is how long an open breaker rejects before admitting
	// half-open probes. 0 means the next Allow after tripping already
	// probes — useful for deterministic tests.
	Cooldown time.Duration
	// Probes is how many consecutive probe successes close a half-open
	// breaker. Default 2.
	Probes int
	// Exempt lists library names that never get a breaker (Allow is
	// always nil, Record a no-op). The serving daemon exempts Vanilla:
	// it is the degradation floor and must always be measurable.
	Exempt []string
	// Now is the clock, injectable for tests. Default time.Now.
	Now func() time.Time
}

func (c *BreakerConfig) withDefaults() BreakerConfig {
	out := BreakerConfig{}
	if c != nil {
		out = *c
	}
	if out.FailureThreshold <= 0 {
		out.FailureThreshold = 5
	}
	if out.Window <= 0 {
		out.Window = 20
	}
	if out.MinRequests <= 0 {
		out.MinRequests = out.Window / 2
	}
	if out.Probes <= 0 {
		out.Probes = 2
	}
	if out.Now == nil {
		out.Now = time.Now
	}
	return out
}

// Breaker is a single circuit breaker for one (platform, library)
// source. Safe for concurrent use.
type Breaker struct {
	cfg      BreakerConfig
	platform string
	library  string
	exempt   bool

	mu       sync.Mutex
	state    State
	consec   int    // consecutive failures while closed
	window   []bool // ring of recent outcomes, true = failure
	windowN  int    // outcomes recorded (saturates at len(window))
	windowAt int    // next ring slot
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	probeOK  int  // consecutive probe successes

	trips     int64
	fastFails int64
	failures  int64
	successes int64
}

// Allow reports whether a request may proceed. nil means go; a non-nil
// return is an *OpenError fast-fail. A half-open breaker admits one
// probe at a time; callers that got nil MUST follow up with exactly one
// Record or Cancel so the probe slot is released.
func (b *Breaker) Allow() error {
	if b.exempt {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return nil
	case Open:
		if b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
			b.state = HalfOpen
			b.probing = true
			b.probeOK = 0
			return nil
		}
	case HalfOpen:
		if !b.probing {
			b.probing = true
			return nil
		}
	}
	b.fastFails++
	return &OpenError{Platform: b.platform, Library: b.library}
}

// Record reports the outcome of a request previously admitted by
// Allow. err == nil is success; context cancellation should be
// reported via Cancel instead — a caller giving up is not evidence
// about the source's health.
func (b *Breaker) Record(err error) {
	if b.exempt {
		return
	}
	fail := err != nil
	b.mu.Lock()
	defer b.mu.Unlock()
	if fail {
		b.failures++
	} else {
		b.successes++
	}
	switch b.state {
	case HalfOpen:
		b.probing = false
		if fail {
			b.tripLocked()
			return
		}
		b.probeOK++
		if b.probeOK >= b.cfg.Probes {
			b.resetLocked()
		}
	case Closed:
		b.pushWindowLocked(fail)
		if !fail {
			b.consec = 0
			return
		}
		b.consec++
		if b.consec >= b.cfg.FailureThreshold || b.rateTrippedLocked() {
			b.tripLocked()
		}
	case Open:
		// Outcome from a request admitted before the trip: count it,
		// but an open breaker's state only changes via Allow.
	}
}

// Cancel releases a probe slot (or discards a closed-state outcome)
// without judging the source: the measurement was abandoned by the
// caller — typically its context was canceled — so it says nothing
// about backend health.
func (b *Breaker) Cancel() {
	if b.exempt {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen {
		b.probing = false
	}
}

func (b *Breaker) tripLocked() {
	b.state = Open
	b.openedAt = b.cfg.Now()
	b.trips++
	b.consec = 0
	b.probing = false
	b.probeOK = 0
	b.windowN = 0
	b.windowAt = 0
}

func (b *Breaker) resetLocked() {
	b.state = Closed
	b.consec = 0
	b.probing = false
	b.probeOK = 0
	b.windowN = 0
	b.windowAt = 0
}

func (b *Breaker) pushWindowLocked(fail bool) {
	if b.window == nil {
		b.window = make([]bool, b.cfg.Window)
	}
	b.window[b.windowAt] = fail
	b.windowAt = (b.windowAt + 1) % len(b.window)
	if b.windowN < len(b.window) {
		b.windowN++
	}
}

func (b *Breaker) rateTrippedLocked() bool {
	if b.cfg.ErrorRate <= 0 || b.windowN < b.cfg.MinRequests {
		return false
	}
	fails := 0
	for i := 0; i < b.windowN; i++ {
		if b.window[i] {
			fails++
		}
	}
	return float64(fails)/float64(b.windowN) >= b.cfg.ErrorRate
}

// State returns the breaker's current state.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerStatus is one breaker's observable state for /statusz.
type BreakerStatus struct {
	Platform  string `json:"platform"`
	Library   string `json:"library"`
	State     State  `json:"state"`
	Trips     int64  `json:"trips"`
	Failures  int64  `json:"failures"`
	Successes int64  `json:"successes"`
	FastFails int64  `json:"fast_fails"`
}

// BreakerSet lazily manages one Breaker per (platform, library) key.
type BreakerSet struct {
	cfg BreakerConfig

	mu sync.Mutex
	m  map[[2]string]*Breaker
}

// NewBreakerSet builds a set with cfg's thresholds (nil selects all
// defaults; note the default set exempts nothing — callers exempt the
// degradation-floor library themselves).
func NewBreakerSet(cfg *BreakerConfig) *BreakerSet {
	return &BreakerSet{cfg: cfg.withDefaults(), m: make(map[[2]string]*Breaker)}
}

// For returns the breaker for (platform, library), creating it on
// first use.
func (s *BreakerSet) For(platform, library string) *Breaker {
	key := [2]string{platform, library}
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.m[key]; ok {
		return b
	}
	b := &Breaker{cfg: s.cfg, platform: platform, library: library}
	for _, ex := range s.cfg.Exempt {
		if ex == library {
			b.exempt = true
			break
		}
	}
	s.m[key] = b
	return b
}

// AnyOpen reports whether any breaker in the set is currently open.
func (s *BreakerSet) AnyOpen() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, b := range s.m {
		if b.State() == Open {
			return true
		}
	}
	return false
}

// Snapshot returns every breaker's status, sorted by (platform,
// library) for deterministic output.
func (s *BreakerSet) Snapshot() []BreakerStatus {
	s.mu.Lock()
	breakers := make([]*Breaker, 0, len(s.m))
	for _, b := range s.m {
		breakers = append(breakers, b)
	}
	s.mu.Unlock()
	out := make([]BreakerStatus, 0, len(breakers))
	for _, b := range breakers {
		b.mu.Lock()
		out = append(out, BreakerStatus{
			Platform:  b.platform,
			Library:   b.library,
			State:     b.state,
			Trips:     b.trips,
			Failures:  b.failures,
			Successes: b.successes,
			FastFails: b.fastFails,
		})
		b.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Platform != out[j].Platform {
			return out[i].Platform < out[j].Platform
		}
		return out[i].Library < out[j].Library
	})
	return out
}
