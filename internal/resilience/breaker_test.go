package resilience

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is an injectable Now for deterministic cooldown tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

var errBoom = errors.New("boom")

// TestBreakerLifecycle walks one breaker through the full
// closed → open → half-open → closed cycle with deterministic trip
// points.
func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	set := NewBreakerSet(&BreakerConfig{
		FailureThreshold: 3,
		Cooldown:         time.Second,
		Probes:           2,
		Now:              clk.now,
	})
	b := set.For("tx2-like", "LibA")

	// Closed: failures below the threshold keep it closed.
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed Allow %d: %v", i, err)
		}
		b.Record(errBoom)
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state after 2 failures = %v, want closed", got)
	}
	// A success resets the consecutive count.
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(nil)
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal(err)
		}
		b.Record(errBoom)
	}
	if got := b.State(); got != Closed {
		t.Fatalf("success did not reset consecutive count: %v", got)
	}
	// Third consecutive failure trips it.
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(errBoom)
	if got := b.State(); got != Open {
		t.Fatalf("state after threshold = %v, want open", got)
	}

	// Open: fast-fails with *OpenError until the cooldown elapses.
	err := b.Allow()
	var oe *OpenError
	if !errors.As(err, &oe) || !errors.Is(err, ErrOpen) {
		t.Fatalf("open Allow = %v, want *OpenError wrapping ErrOpen", err)
	}
	if oe.Platform != "tx2-like" || oe.Library != "LibA" {
		t.Fatalf("OpenError names %s/%s", oe.Platform, oe.Library)
	}
	if !oe.NoRetry() {
		t.Fatal("OpenError must be NoRetry")
	}

	// Half-open after cooldown: one probe at a time.
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe Allow: %v", err)
	}
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state after cooldown Allow = %v, want half-open", got)
	}
	if err := b.Allow(); err == nil {
		t.Fatal("second concurrent probe admitted")
	}
	// Probe failure re-opens.
	b.Record(errBoom)
	if got := b.State(); got != Open {
		t.Fatalf("state after probe failure = %v, want open", got)
	}

	// Recover: Probes consecutive probe successes close it.
	clk.advance(time.Second)
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("recovery probe %d: %v", i, err)
		}
		b.Record(nil)
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state after %d probe successes = %v, want closed", 2, got)
	}
	// Healed: requests flow again.
	if err := b.Allow(); err != nil {
		t.Fatalf("healed Allow: %v", err)
	}
	b.Record(nil)

	st := set.Snapshot()
	if len(st) != 1 {
		t.Fatalf("snapshot has %d breakers", len(st))
	}
	if st[0].Trips != 2 || st[0].FastFails < 2 {
		t.Fatalf("counters: %+v (want 2 trips, >=2 fast-fails)", st[0])
	}
}

// TestBreakerZeroCooldown checks the deterministic-test mode: the next
// Allow after a trip already probes.
func TestBreakerZeroCooldown(t *testing.T) {
	set := NewBreakerSet(&BreakerConfig{FailureThreshold: 1, Probes: 1})
	b := set.For("p", "L")
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(errBoom)
	if got := b.State(); got != Open {
		t.Fatalf("state = %v, want open after one failure", got)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("zero-cooldown probe rejected: %v", err)
	}
	b.Record(nil)
	if got := b.State(); got != Closed {
		t.Fatalf("state = %v, want closed after one probe success", got)
	}
}

// TestBreakerCancelReleasesProbe checks that an abandoned probe frees
// the slot without judging the source.
func TestBreakerCancelReleasesProbe(t *testing.T) {
	set := NewBreakerSet(&BreakerConfig{FailureThreshold: 1, Probes: 1})
	b := set.For("p", "L")
	b.Allow()
	b.Record(errBoom) // trip
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	// The probe's context was canceled: no verdict.
	b.Cancel()
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state after Cancel = %v, want half-open", got)
	}
	// Slot is free again.
	if err := b.Allow(); err != nil {
		t.Fatalf("probe slot not released: %v", err)
	}
	b.Record(nil)
	if got := b.State(); got != Closed {
		t.Fatalf("state = %v, want closed", got)
	}
}

// TestBreakerErrorRate checks rate-based tripping over the window.
func TestBreakerErrorRate(t *testing.T) {
	set := NewBreakerSet(&BreakerConfig{
		FailureThreshold: 100, // consecutive path effectively off
		ErrorRate:        0.5,
		Window:           10,
		MinRequests:      10,
	})
	b := set.For("p", "L")
	// Alternate success/failure: 50% failure rate, but under
	// MinRequests nothing trips.
	for i := 0; i < 9; i++ {
		b.Allow()
		if i%2 == 0 {
			b.Record(errBoom)
		} else {
			b.Record(nil)
		}
		if got := b.State(); got != Closed {
			t.Fatalf("tripped early at outcome %d: %v", i, got)
		}
	}
	// The 10th outcome reaches MinRequests with 5/10 failures >= 0.5 —
	// but rate tripping only fires on a failing outcome.
	b.Allow()
	b.Record(errBoom)
	if got := b.State(); got != Open {
		t.Fatalf("state after 6/10 failures = %v, want open", got)
	}
}

// TestBreakerExempt checks that exempt libraries never trip.
func TestBreakerExempt(t *testing.T) {
	set := NewBreakerSet(&BreakerConfig{FailureThreshold: 1, Exempt: []string{"Vanilla"}})
	b := set.For("p", "Vanilla")
	for i := 0; i < 10; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("exempt Allow %d: %v", i, err)
		}
		b.Record(errBoom)
	}
	if got := b.State(); got != Closed {
		t.Fatalf("exempt breaker state = %v, want closed", got)
	}
	if set.AnyOpen() {
		t.Fatal("AnyOpen over an exempt-only set")
	}
}

// TestBreakerSetDistinctKeys checks per-(platform, library) isolation.
func TestBreakerSetDistinctKeys(t *testing.T) {
	set := NewBreakerSet(&BreakerConfig{FailureThreshold: 1})
	a := set.For("p1", "L")
	a.Allow()
	a.Record(errBoom)
	if got := a.State(); got != Open {
		t.Fatalf("p1/L = %v, want open", got)
	}
	if got := set.For("p2", "L").State(); got != Closed {
		t.Fatalf("p2/L = %v, want closed (isolated)", got)
	}
	if got := set.For("p1", "M").State(); got != Closed {
		t.Fatalf("p1/M = %v, want closed (isolated)", got)
	}
	if !set.AnyOpen() {
		t.Fatal("AnyOpen missed the tripped breaker")
	}
	if same := set.For("p1", "L"); same != a {
		t.Fatal("For did not return the cached breaker")
	}
	snap := set.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d entries, want 3", len(snap))
	}
	// Sorted by (platform, library).
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Platform > snap[i].Platform ||
			(snap[i-1].Platform == snap[i].Platform && snap[i-1].Library > snap[i].Library) {
			t.Fatalf("snapshot not sorted: %+v", snap)
		}
	}
}
