package resilience

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestWatchdogSweep drives Sweep with an injected clock: a quiet task
// fires once (with a StallError naming it), a beating task never does.
func TestWatchdogSweep(t *testing.T) {
	clk := &fakeClock{t: time.Unix(2000, 0)}
	w := NewWatchdog(100*time.Millisecond, 4)
	w.now = clk.now
	defer w.Stop()

	var fired atomic.Value
	stuck := w.Watch("stuck", func(err error) { fired.Store(err) })
	_ = stuck
	live := w.Watch("live", func(err error) { t.Errorf("live task fired: %v", err) })

	// Inside the floor: nobody fires.
	clk.advance(90 * time.Millisecond)
	live.Beat()
	if n := w.Sweep(); n != 0 {
		t.Fatalf("sweep inside floor fired %d", n)
	}

	// Past the floor: only the quiet task fires.
	clk.advance(20 * time.Millisecond)
	live.Beat()
	if n := w.Sweep(); n != 1 {
		t.Fatalf("sweep fired %d, want 1", n)
	}
	err, _ := fired.Load().(error)
	var se *StallError
	if !errors.As(err, &se) || !errors.Is(err, ErrStalled) {
		t.Fatalf("cancel got %v, want *StallError wrapping ErrStalled", err)
	}
	if se.Name != "stuck" || se.Quiet <= se.Limit {
		t.Fatalf("stall error: %+v", se)
	}
	if w.Fired() != 1 {
		t.Fatalf("Fired() = %d", w.Fired())
	}

	// A fired task is unregistered: it cannot fire twice.
	clk.advance(time.Hour)
	live.Stop()
	if n := w.Sweep(); n != 0 {
		t.Fatalf("second sweep fired %d", n)
	}
}

// TestWatchdogLearnedCadence checks that a slow-but-steady task earns a
// limit of mult × its cadence, above the floor.
func TestWatchdogLearnedCadence(t *testing.T) {
	clk := &fakeClock{t: time.Unix(3000, 0)}
	w := NewWatchdog(10*time.Millisecond, 4)
	w.now = clk.now
	defer w.Stop()

	hb := w.Watch("steady", func(err error) { t.Errorf("steady task fired: %v", err) })
	// Beat every 50ms: the EWMA converges to 50ms, so the limit is
	// max(10ms, 4 x ~50ms) ≈ 200ms.
	for i := 0; i < 16; i++ {
		clk.advance(50 * time.Millisecond)
		hb.Beat()
	}
	// 150ms quiet: over the floor, under the learned limit.
	clk.advance(150 * time.Millisecond)
	if n := w.Sweep(); n != 0 {
		t.Fatalf("fired despite learned cadence headroom (%d)", n)
	}
	hb.Stop()
}

// TestWatchdogSuspend checks that a parked task never stalls, and that
// the parking interval does not poison the learned cadence.
func TestWatchdogSuspend(t *testing.T) {
	clk := &fakeClock{t: time.Unix(4000, 0)}
	w := NewWatchdog(20*time.Millisecond, 4)
	w.now = clk.now
	defer w.Stop()

	var fired atomic.Int64
	hb := w.Watch("parked", func(err error) { fired.Add(1) })
	for i := 0; i < 8; i++ {
		clk.advance(5 * time.Millisecond)
		hb.Beat()
	}
	hb.Suspend()
	clk.advance(time.Minute) // parked on someone else's build
	if n := w.Sweep(); n != 0 || fired.Load() != 0 {
		t.Fatalf("suspended task fired (%d)", n)
	}
	hb.Beat() // resume
	// The minute of parking must not have entered the EWMA: a beat
	// cadence of ~5ms keeps the limit near the floor, so a genuine
	// stall right after resuming still fires quickly.
	clk.advance(100 * time.Millisecond)
	if n := w.Sweep(); n != 1 {
		t.Fatalf("stall after resume fired %d, want 1", n)
	}
}

// TestWatchdogStopNeverStarted checks Stop is safe without Start.
func TestWatchdogStopNeverStarted(t *testing.T) {
	w := NewWatchdog(time.Second, 0)
	w.Stop()
	w.Stop() // idempotent
}

// TestWatchdogBackgroundLoop exercises the real ticker path end to end.
func TestWatchdogBackgroundLoop(t *testing.T) {
	w := NewWatchdog(40*time.Millisecond, 1)
	w.Start()
	defer w.Stop()
	done := make(chan error, 1)
	w.Watch("bg", func(err error) { done <- err })
	select {
	case err := <-done:
		if !errors.Is(err, ErrStalled) {
			t.Fatalf("got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("background watchdog never fired")
	}
}

// TestHeartbeatNilSafe checks the nil-receiver guards used when the
// watchdog is disabled.
func TestHeartbeatNilSafe(t *testing.T) {
	var hb *Heartbeat
	hb.Beat()
	hb.Suspend()
	hb.Stop()
}
