package resilience

import (
	"context"

	"repro/internal/primitives"
	"repro/internal/profile"
)

// GuardSource wraps a FallibleSource with per-library circuit breakers
// from set. Each measurement first consults the breaker(s) for the
// libraries it touches: if any is open the measurement fast-fails with
// an *OpenError (NoRetry, so profile.Robust does not retry it and
// profile.RunFallible degrades the candidate via lut.DropCandidate).
// Otherwise the measurement runs and its outcome is recorded — except
// when the caller's context was the cause of the failure, which is
// reported to no breaker: the caller giving up is not evidence about
// the source.
func GuardSource(set *BreakerSet, platform string, src profile.FallibleSource) profile.FallibleSource {
	return &guardedSource{set: set, platform: platform, src: src}
}

type guardedSource struct {
	set      *BreakerSet
	platform string
	src      profile.FallibleSource
}

// measure runs f under the breakers for libs (deduplicated: an edge
// between two candidates of the same library must claim its half-open
// probe slot once, not block itself by asking twice).
func (g *guardedSource) measure(ctx context.Context, libs []string, f func() (float64, error)) (float64, error) {
	claimed := libs[:0:0]
	for _, lib := range libs {
		dup := false
		for _, c := range claimed {
			if c == lib {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if err := g.set.For(g.platform, lib).Allow(); err != nil {
			for _, c := range claimed {
				g.set.For(g.platform, c).Cancel()
			}
			return 0, err
		}
		claimed = append(claimed, lib)
	}
	v, err := f()
	if err != nil && ctx.Err() != nil {
		for _, c := range claimed {
			g.set.For(g.platform, c).Cancel()
		}
		return v, err
	}
	for _, c := range claimed {
		g.set.For(g.platform, c).Record(err)
	}
	return v, err
}

func (g *guardedSource) MeasureSample(ctx context.Context, i int, p *primitives.Primitive, sample int) (float64, error) {
	return g.measure(ctx, []string{p.Lib.String()}, func() (float64, error) {
		return g.src.MeasureSample(ctx, i, p, sample)
	})
}

func (g *guardedSource) MeasureEdgePenalty(ctx context.Context, producer int, fp, tp *primitives.Primitive) (float64, error) {
	return g.measure(ctx, []string{fp.Lib.String(), tp.Lib.String()}, func() (float64, error) {
		return g.src.MeasureEdgePenalty(ctx, producer, fp, tp)
	})
}

func (g *guardedSource) MeasureOutputPenalty(ctx context.Context, output int, p *primitives.Primitive) (float64, error) {
	return g.measure(ctx, []string{p.Lib.String()}, func() (float64, error) {
		return g.src.MeasureOutputPenalty(ctx, output, p)
	})
}

// WithHeartbeat wraps a FallibleSource so every completed measurement
// beats hb — the watchdog's signal that the profiling loop is making
// progress. A hb of nil returns src unchanged.
func WithHeartbeat(hb *Heartbeat, src profile.FallibleSource) profile.FallibleSource {
	if hb == nil {
		return src
	}
	return &beatingSource{hb: hb, src: src}
}

type beatingSource struct {
	hb  *Heartbeat
	src profile.FallibleSource
}

func (b *beatingSource) MeasureSample(ctx context.Context, i int, p *primitives.Primitive, sample int) (float64, error) {
	v, err := b.src.MeasureSample(ctx, i, p, sample)
	b.hb.Beat()
	return v, err
}

func (b *beatingSource) MeasureEdgePenalty(ctx context.Context, producer int, fp, tp *primitives.Primitive) (float64, error) {
	v, err := b.src.MeasureEdgePenalty(ctx, producer, fp, tp)
	b.hb.Beat()
	return v, err
}

func (b *beatingSource) MeasureOutputPenalty(ctx context.Context, output int, p *primitives.Primitive) (float64, error) {
	v, err := b.src.MeasureOutputPenalty(ctx, output, p)
	b.hb.Beat()
	return v, err
}
