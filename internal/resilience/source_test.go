package resilience

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/models"
	"repro/internal/platform"
	"repro/internal/primitives"
	"repro/internal/profile"
)

// failingLibSource decorates a FallibleSource so every sample
// measurement of one library fails — the "driver for this backend is
// broken" scenario the breakers exist for. Calls are counted per
// library so tests can prove fast-fails skipped the source entirely.
type failingLibSource struct {
	src   profile.FallibleSource
	lib   primitives.Library
	calls atomic.Int64 // measurements attempted against the broken lib
}

var errBackend = errors.New("backend driver crashed")

func (f *failingLibSource) MeasureSample(ctx context.Context, i int, p *primitives.Primitive, sample int) (float64, error) {
	if p.Lib == f.lib {
		f.calls.Add(1)
		return 0, errBackend
	}
	return f.src.MeasureSample(ctx, i, p, sample)
}

func (f *failingLibSource) MeasureEdgePenalty(ctx context.Context, producer int, fp, tp *primitives.Primitive) (float64, error) {
	return f.src.MeasureEdgePenalty(ctx, producer, fp, tp)
}

func (f *failingLibSource) MeasureOutputPenalty(ctx context.Context, output int, p *primitives.Primitive) (float64, error) {
	return f.src.MeasureOutputPenalty(ctx, output, p)
}

// TestGuardSourceDegradation is the breaker ↔ profiling integration
// check: a library whose every measurement fails trips its breaker,
// later candidates of that library fast-fail without touching the
// source (NoRetry, no retry burn), and RunFallible degrades by
// dropping the candidates instead of aborting the run.
func TestGuardSourceDegradation(t *testing.T) {
	net, err := models.Build("lenet5")
	if err != nil {
		t.Fatal(err)
	}
	board, _ := platform.Preset("tx2-like")
	sim := profile.NewSimSource(net, board)
	failing := &failingLibSource{src: profile.AsFallible(sim), lib: primitives.NNPACK}

	// The long cooldown keeps the breaker open for the whole run: after
	// the trip every further NNPACK measurement must fast-fail (with a
	// zero cooldown each one would instead be admitted as a half-open
	// probe, re-fail, and re-trip — correct, but it would not exercise
	// load shedding).
	set := NewBreakerSet(&BreakerConfig{
		FailureThreshold: 3,
		Cooldown:         time.Hour,
		Exempt:           []string{primitives.Vanilla.String()},
	})
	src := GuardSource(set, board.Name, failing)

	tab, rep, err := profile.RunFallible(context.Background(), net, src, profile.Options{
		Mode:    primitives.ModeCPU,
		Samples: 3,
		Robust:  &profile.Robust{MaxRetries: 2},
	})
	if err != nil {
		t.Fatalf("RunFallible should degrade, not fail: %v", err)
	}
	if tab == nil {
		t.Fatal("no table")
	}
	if len(rep.Excluded) == 0 {
		t.Fatal("no candidates excluded despite a fully failing library")
	}
	for _, ex := range rep.Excluded {
		pr, ok := primitives.ByName(ex.Primitive)
		if !ok {
			t.Fatalf("excluded primitive %q unknown", ex.Primitive)
		}
		if pr.Lib != primitives.NNPACK {
			t.Fatalf("excluded %s (library %s), only %s should fail", ex.Primitive, pr.Lib, primitives.NNPACK)
		}
	}

	b := set.For(board.Name, primitives.NNPACK.String())
	if got := b.State(); got != Open {
		t.Fatalf("NNPACK breaker = %v, want open", got)
	}
	var st BreakerStatus
	for _, s := range set.Snapshot() {
		if s.Library == primitives.NNPACK.String() {
			st = s
		}
	}
	if st.Trips == 0 {
		t.Fatalf("NNPACK breaker never tripped: %+v", st)
	}
	if st.FastFails == 0 {
		t.Fatalf("no fast-fails recorded — breaker did not shed load: %+v", st)
	}
	// Fast-fails short-circuit before the source: the broken backend
	// was touched only while the breaker was closed or probing, i.e.
	// its failure count, not once per candidate × sample × retry.
	if calls := failing.calls.Load(); calls != st.Failures {
		t.Fatalf("broken backend saw %d calls, breaker recorded %d failures — fast-fails leaked through", calls, st.Failures)
	}

	// Healthy libraries kept flowing.
	for _, s := range set.Snapshot() {
		if s.Library != primitives.NNPACK.String() && s.Trips != 0 {
			t.Fatalf("healthy library %s tripped: %+v", s.Library, s)
		}
	}
}

// TestGuardSourceCancelNotCounted checks that a measurement failing
// because the caller's context died is reported to no breaker.
func TestGuardSourceCancelNotCounted(t *testing.T) {
	set := NewBreakerSet(&BreakerConfig{FailureThreshold: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := GuardSource(set, "p", canceledSource{})
	p := primitives.PVanilla
	if _, err := src.MeasureSample(ctx, 1, p, 0); err == nil {
		t.Fatal("expected error from canceled source")
	}
	if got := set.For("p", p.Lib.String()).State(); got != Closed {
		t.Fatalf("caller cancellation tripped the breaker: %v", got)
	}
}

// canceledSource fails every measurement with the context error.
type canceledSource struct{}

func (canceledSource) MeasureSample(ctx context.Context, i int, p *primitives.Primitive, sample int) (float64, error) {
	return 0, ctx.Err()
}

func (canceledSource) MeasureEdgePenalty(ctx context.Context, producer int, fp, tp *primitives.Primitive) (float64, error) {
	return 0, ctx.Err()
}

func (canceledSource) MeasureOutputPenalty(ctx context.Context, output int, p *primitives.Primitive) (float64, error) {
	return 0, ctx.Err()
}

// TestWithHeartbeat checks the heartbeat decorator: nil passthrough,
// and a beat per completed measurement (observed via the watchdog's
// quiet clock).
func TestWithHeartbeat(t *testing.T) {
	if got := WithHeartbeat(nil, canceledSource{}); got == nil {
		t.Fatal("nil heartbeat must return the source unchanged")
	}
	clk := &fakeClock{t: time.Unix(5000, 0)}
	w := NewWatchdog(50*time.Millisecond, 1)
	w.now = clk.now
	defer w.Stop()
	hb := w.Watch("profiling", func(err error) { t.Errorf("fired: %v", err) })
	src := WithHeartbeat(hb, canceledSource{})
	// Without beats this would stall at 50ms; a measurement every
	// 40ms keeps it alive.
	p := primitives.PVanilla
	for i := 0; i < 5; i++ {
		clk.advance(40 * time.Millisecond)
		src.MeasureSample(context.Background(), 1, p, 0)
		if n := w.Sweep(); n != 0 {
			t.Fatalf("stalled despite measurement beats (iteration %d)", i)
		}
	}
	hb.Stop()
}
