// Package resilience provides the serving daemon's failure-containment
// primitives: per-(platform, primitive library) circuit breakers that
// stop burning retry budget on a backend that is down, and a stuck-work
// watchdog that cancels jobs whose progress heartbeat stalls.
//
// Both are deterministic under test: the breaker takes an injectable
// clock and trips on exact consecutive-failure / windowed-error-rate
// thresholds, and the watchdog exposes a single-scan Sweep so tests can
// drive it with a fake clock instead of sleeping.
//
// The pieces compose with the fault-tolerant profiling pipeline from
// internal/profile: GuardSource wraps a profile.FallibleSource so that
// an open breaker fast-fails measurements with a NoRetry error, which
// profile.Robust treats as non-retryable and profile.RunFallible turns
// into lut.DropCandidate degradation — the tripped library's candidates
// drop out of the search space instead of pinning the job.
package resilience
