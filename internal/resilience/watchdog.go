package resilience

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrStalled is the sentinel wrapped by every watchdog cancellation.
var ErrStalled = errors.New("resilience: progress heartbeat stalled")

// StallError reports a watchdog firing: the named task went Quiet
// without a heartbeat, exceeding its Limit.
type StallError struct {
	Name  string
	Quiet time.Duration
	Limit time.Duration
}

func (e *StallError) Error() string {
	return fmt.Sprintf("resilience: %s stalled (quiet %v, limit %v)", e.Name, e.Quiet, e.Limit)
}

func (e *StallError) Unwrap() error { return ErrStalled }

// Watchdog cancels tasks whose progress heartbeat goes quiet. Each
// watched task gets a Heartbeat; the task beats it on every unit of
// progress (a profiled sample, a checkpointed search chunk). The
// watchdog learns each task's expected cadence (EWMA of beat
// intervals) and fires when the quiet time exceeds
// max(floor, mult × cadence).
type Watchdog struct {
	floor time.Duration
	mult  float64
	now   func() time.Time

	mu    sync.Mutex
	tasks map[*Heartbeat]struct{}

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	fired    int64
}

// NewWatchdog builds a watchdog with the given stall floor (the
// minimum quiet time before any task is considered stalled — also the
// default cadence before a task has beaten twice) and cadence multiple
// (≤ 0 selects 8). No goroutine starts until Start.
func NewWatchdog(floor time.Duration, mult float64) *Watchdog {
	if mult <= 0 {
		mult = 8
	}
	return &Watchdog{
		floor: floor,
		mult:  mult,
		now:   time.Now,
		tasks: make(map[*Heartbeat]struct{}),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Start launches the scan loop. The scan period is a quarter of the
// stall floor (at least 10ms) so a stall is detected within ~1.25× its
// limit.
func (w *Watchdog) Start() {
	period := w.floor / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	go func() {
		defer close(w.done)
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				w.Sweep()
			}
		}
	}()
}

// Stop terminates the scan loop (idempotent). Watched heartbeats are
// not fired on stop.
func (w *Watchdog) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
	select {
	case <-w.done:
	default:
		// Start was never called; done never closes.
	}
}

// Fired returns how many stalls the watchdog has detected.
func (w *Watchdog) Fired() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fired
}

// Watch registers a task. cancel is invoked (once, from the scan
// goroutine) with a *StallError when the task's heartbeat stalls. The
// returned Heartbeat starts live with a beat at registration time;
// call its Stop when the task finishes.
func (w *Watchdog) Watch(name string, cancel func(error)) *Heartbeat {
	hb := &Heartbeat{w: w, name: name, cancelFn: cancel, last: w.now()}
	w.mu.Lock()
	w.tasks[hb] = struct{}{}
	w.mu.Unlock()
	return hb
}

// Sweep scans every watched heartbeat once, firing those that have
// stalled, and returns how many fired. The background loop calls it on
// a ticker; tests call it directly with an injected clock.
func (w *Watchdog) Sweep() int {
	now := w.now()
	w.mu.Lock()
	var firing []*Heartbeat
	for hb := range w.tasks {
		if hb.stalled(now, w.floor, w.mult) {
			firing = append(firing, hb)
			delete(w.tasks, hb)
		}
	}
	w.fired += int64(len(firing))
	w.mu.Unlock()
	for _, hb := range firing {
		quiet, limit := hb.quietLimit(now, w.floor, w.mult)
		hb.cancelFn(&StallError{Name: hb.name, Quiet: quiet, Limit: limit})
	}
	return len(firing)
}

// Heartbeat is one watched task's progress pulse.
type Heartbeat struct {
	w        *Watchdog
	name     string
	cancelFn func(error)

	mu        sync.Mutex
	last      time.Time
	ewma      time.Duration // learned beat cadence; 0 until two beats
	suspended bool
}

// Beat records one unit of progress and refines the learned cadence.
// A beat that ends a Suspend only restarts the quiet clock — the
// suspended interval is parking time, not cadence evidence.
func (hb *Heartbeat) Beat() {
	if hb == nil {
		return
	}
	now := hb.w.now()
	hb.mu.Lock()
	if !hb.suspended {
		iv := now.Sub(hb.last)
		if hb.ewma == 0 {
			hb.ewma = iv
		} else {
			hb.ewma += (iv - hb.ewma) / 8
		}
	}
	hb.suspended = false
	hb.last = now
	hb.mu.Unlock()
}

// Suspend parks the heartbeat: the task is intentionally waiting on
// work it does not own (another job's single-flight profiling build),
// so quiet time must not count against it. The next Beat resumes
// monitoring.
func (hb *Heartbeat) Suspend() {
	if hb == nil {
		return
	}
	hb.mu.Lock()
	hb.suspended = true
	hb.mu.Unlock()
}

// Stop unregisters the heartbeat; the watchdog will never fire it
// after Stop returns.
func (hb *Heartbeat) Stop() {
	if hb == nil {
		return
	}
	hb.w.mu.Lock()
	delete(hb.w.tasks, hb)
	hb.w.mu.Unlock()
}

func (hb *Heartbeat) stalled(now time.Time, floor time.Duration, mult float64) bool {
	quiet, limit := hb.quietLimit(now, floor, mult)
	return quiet > limit
}

func (hb *Heartbeat) quietLimit(now time.Time, floor time.Duration, mult float64) (quiet, limit time.Duration) {
	hb.mu.Lock()
	defer hb.mu.Unlock()
	if hb.suspended {
		return 0, floor
	}
	limit = floor
	if hb.ewma > 0 {
		if scaled := time.Duration(float64(hb.ewma) * mult); scaled > limit {
			limit = scaled
		}
	}
	return now.Sub(hb.last), limit
}
