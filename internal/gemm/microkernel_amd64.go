//go:build amd64

package gemm

// microKernelSSE is implemented in microkernel_amd64.s. It computes a
// 4x8 tile sum_p ap[p*4+ii]*bp[p*8+jj] into t with SSE packed single
// ops, bit-identical to microTileGo (see microkernel.go).
//
//go:noescape
func microKernelSSE(k int, ap, bp, t *float32)

// microKernelAVX2 is implemented in microkernel_amd64.s. It computes
// an 8x8 tile with YMM mul+add pairs (no FMA — the bit-equality
// contract forbids the skipped intermediate rounding), bit-identical
// to microTileGo8x8.
//
//go:noescape
func microKernelAVX2(k int, ap, bp, t *float32)

// microTileSSE adapts the SSE asm kernel to the dispatch signature.
func microTileSSE(k int, ap, bp, t []float32) {
	t = t[:32]
	if k <= 0 {
		for i := range t {
			t[i] = 0
		}
		return
	}
	_ = ap[k*4-1]
	_ = bp[k*8-1]
	microKernelSSE(k, &ap[0], &bp[0], &t[0])
}

// microTileAVX2 adapts the AVX2 asm kernel to the dispatch signature.
func microTileAVX2(k int, ap, bp, t []float32) {
	t = t[:64]
	if k <= 0 {
		for i := range t {
			t[i] = 0
		}
		return
	}
	_ = ap[k*8-1]
	_ = bp[k*8-1]
	microKernelAVX2(k, &ap[0], &bp[0], &t[0])
}

// registerArchKernels registers the amd64 kernels: SSE is baseline on
// the architecture and always available; the wider AVX2 kernel is
// registered ahead of it when CPUID reports both the instruction set
// and OS support for YMM state.
func registerArchKernels() {
	registerKernel(&Kernel{Name: "sse-4x8", MR: 4, NR: 8, micro: microTileSSE})
	if hasAVX2() {
		registerKernel(&Kernel{Name: "avx2-8x8", MR: 8, NR: 8, micro: microTileAVX2})
	}
}
