//go:build amd64

package gemm

// microKernelSSE is implemented in microkernel_amd64.s. It computes the
// mr x nr tile sum_p ap[p*mr+ii]*bp[p*nr+jj] into t with SSE packed
// single ops, bit-identical to microTileGo (see microkernel.go).
//
//go:noescape
func microKernelSSE(k int, ap, bp, t *float32)

// microTile dispatches to the SSE micro-kernel on amd64.
func microTile(k int, ap, bp []float32, t *[mr * nr]float32) {
	if k <= 0 {
		*t = [mr * nr]float32{}
		return
	}
	_ = ap[k*mr-1]
	_ = bp[k*nr-1]
	microKernelSSE(k, &ap[0], &bp[0], &t[0])
}
