package gemm

import "repro/internal/pool"

// Packed / Parallel — the tuned-BLAS stand-in. The classic three-level
// GEMM structure (Goto & van de Geijn): B is packed once into NR-wide
// column panels, each MR-row strip of A is packed into a contiguous
// column-major panel, and an MR x NR register-tiled micro-kernel walks
// the two packed panels with unit stride, keeping the full output tile
// in registers across the whole k reduction (no loads or stores of C
// inside the loop). Packing plus register tiling is where the speedup
// over Blocked comes from; Parallel only changes who computes which
// strip.
//
// The pack geometry (MR, NR) is not fixed here: it comes from the
// dispatched Kernel descriptor (kernel.go), so the SSE 4x8, AVX2 8x8,
// NEON 8x8 and pure-Go kernels all flow through this one pipeline with
// no per-call ISA branching — the descriptor is read once per GEMM
// call.
//
// Correctness contract: every output element C[i,j] is accumulated in
// strictly ascending p order into a single register, then added to
// C[i,j] once. Each MR-row strip is computed by the same strip function
// with the same packed inputs regardless of the worker count, and strip
// ownership is exclusive, so Parallel's output is bit-identical to
// Packed's at any worker count — and, because per-element rounding
// never depends on the tile geometry (see Kernel), identical across
// every dispatched kernel too. (Like Blocked vs Naive, Packed differs
// from Naive only by float32 rounding of the deferred C addition.)

// packB packs row-major B (k x n) into ceil(n/nr) panels of nr columns.
// Panel j0/nr holds k rows of nr consecutive values
// b[p][j0..j0+nr), zero-padded past column n, so the micro-kernel reads
// it with unit stride. dst must have k*roundUp(n, nr) elements.
func packB(k, n, nr int, b, dst []float32) {
	np := (n + nr - 1) / nr
	for pj := 0; pj < np; pj++ {
		j0 := pj * nr
		panel := dst[pj*k*nr : (pj+1)*k*nr]
		if j0+nr <= n {
			for p := 0; p < k; p++ {
				copy(panel[p*nr:p*nr+nr], b[p*n+j0:p*n+j0+nr])
			}
			continue
		}
		w := n - j0 // ragged right edge
		for p := 0; p < k; p++ {
			copy(panel[p*nr:p*nr+w], b[p*n+j0:p*n+j0+w])
			for jj := w; jj < nr; jj++ {
				panel[p*nr+jj] = 0
			}
		}
	}
}

// packStripA packs rows [i0, i0+mr) of row-major A (m x k) into a
// column-major strip: dst[p*mr+ii] = A[i0+ii][p], zero-padded past row
// m. dst must have k*mr elements.
func packStripA(m, k, i0, mr int, a, dst []float32) {
	rows := min(mr, m-i0)
	for ii := 0; ii < rows; ii++ {
		arow := a[(i0+ii)*k : (i0+ii)*k+k]
		for p, v := range arow {
			dst[p*mr+ii] = v
		}
	}
	for ii := rows; ii < mr; ii++ {
		for p := 0; p < k; p++ {
			dst[p*mr+ii] = 0
		}
	}
}

// strip computes C rows [i0, min(i0+MR, m)) from the packed B panels,
// packing its own A strip into apk (k*MR elements). This is the one
// unit of work Parallel partitions; every worker count runs exactly
// this code on exactly these inputs, which is what makes the output
// worker-count-invariant.
func strip(kn *Kernel, m, n, k, i0 int, a, bpk, c, apk []float32) {
	mr, nr := kn.MR, kn.NR
	packStripA(m, k, i0, mr, a, apk)
	rows := min(mr, m-i0)
	np := (n + nr - 1) / nr
	var tbuf [maxTileElems]float32
	t := tbuf[:mr*nr]
	for pj := 0; pj < np; pj++ {
		kn.micro(k, apk, bpk[pj*k*nr:(pj+1)*k*nr], t)
		j0 := pj * nr
		cols := min(nr, n-j0)
		for ii := 0; ii < rows; ii++ {
			crow := c[(i0+ii)*n+j0 : (i0+ii)*n+j0+cols]
			trow := t[ii*nr : ii*nr+cols]
			for jj := range crow {
				crow[jj] += trow[jj]
			}
		}
	}
}

// Packed computes C = A*B + C for row-major A (m x k), B (k x n),
// C (m x n) with the packed, register-tiled algorithm. It is the
// sequential path of Parallel: Parallel(..., w) is bit-identical to
// Packed for every w.
func Packed(m, n, k int, a, b, c []float32) {
	parallelKernel(activeKernel(), m, n, k, a, b, c, 1)
}

// parallelFloorFlops is the problem size (counted as 2*m*n*k flops)
// below which Parallel runs the packed path inline instead of fanning
// out: at small shapes the pack-share handoff and goroutine wakeups
// cost more than the multiply itself (BENCH_kernels.json had
// parallel8/128 at 235µs vs 217µs single-threaded). 2*160³ sits just
// under the floor; the 192-cube (14.2 Mflop) is comfortably past the
// measured crossover. Exclusive strip ownership makes the fan-out
// bit-identical either way, so the threshold is purely a latency knob.
const parallelFloorFlops = 1 << 23 // 8.4 Mflop

// minStripsPerWorker is the smallest strip chunk worth waking a worker
// for: a worker that owns a single strip spends a pack-share handoff
// and a wakeup on one micro-kernel sweep, which the crossover
// measurements put below break-even.
const minStripsPerWorker = 2

// effectiveWorkers resolves the strip fan-out Parallel actually uses.
// Three thresholds, each a pure function of the shape so the choice is
// deterministic:
//
//   - workers never exceeds maxprocs: goroutines beyond the schedulable
//     parallelism only add handoff and wakeup latency (the measured
//     parallel8-vs-packed regression at 512 on a 1-CPU host — 5.71 ms
//     vs 5.63 ms — was exactly this, 8 goroutines time-slicing 1 core);
//   - a problem below parallelFloorFlops runs inline (see above);
//   - each worker must own at least minStripsPerWorker strips, so thin
//     fan-outs shrink instead of waking workers for one strip each.
//
// Exclusive strip ownership makes every choice bit-identical, so these
// are purely latency thresholds — falling back to the sequential packed
// path never changes the result.
func effectiveWorkers(m, n, k, strips, workers, maxprocs int) int {
	if workers > maxprocs {
		workers = maxprocs
	}
	if workers > strips {
		workers = strips
	}
	if 2*m*n*k < parallelFloorFlops {
		return 1
	}
	if workers > 1 && strips < workers*minStripsPerWorker {
		workers = strips / minStripsPerWorker
		if workers < 1 {
			workers = 1
		}
	}
	return workers
}

// Parallel computes C = A*B + C, partitioning the MR-row strips of C
// across at most workers goroutines from a bounded pool. B is packed
// once and shared read-only; each worker owns an exclusive set of
// strips and its own A-strip buffer, so there is no write sharing and
// the result is bit-identical to the sequential Packed at any worker
// count. workers <= 1, a degenerate shape, or a problem below
// parallelFloorFlops runs inline with no goroutines; workers beyond
// GOMAXPROCS or beyond one per minStripsPerWorker strips are clamped
// (see effectiveWorkers) — over-subscription only adds latency.
func Parallel(m, n, k int, a, b, c []float32, workers int) {
	parallelKernel(activeKernel(), m, n, k, a, b, c, workers)
}

// parallelKernel is Parallel over an explicit kernel descriptor; the
// dispatch equality tests drive every variant through it.
func parallelKernel(kn *Kernel, m, n, k int, a, b, c []float32, workers int) {
	checkDims("A", a, m*k)
	checkDims("B", b, k*n)
	checkDims("C", c, m*n)
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		return // C += A*B adds nothing when the reduction is empty
	}
	mr, nr := kn.MR, kn.NR
	bpk := make([]float32, k*((n+nr-1)/nr)*nr)
	packB(k, n, nr, b, bpk)
	strips := (m + mr - 1) / mr
	workers = effectiveWorkers(m, n, k, strips, workers, pool.DefaultWorkers())
	if workers <= 1 {
		apk := make([]float32, k*mr)
		for s := 0; s < strips; s++ {
			strip(kn, m, n, k, s*mr, a, bpk, c, apk)
		}
		return
	}
	// One pool job per worker, each claiming a contiguous chunk of
	// strips: chunk boundaries depend only on (strips, workers), never
	// on scheduling, and each job reuses one A-strip buffer.
	pool.Run(workers, workers, func(w int) {
		lo := w * strips / workers
		hi := (w + 1) * strips / workers
		apk := make([]float32, k*mr)
		for s := lo; s < hi; s++ {
			strip(kn, m, n, k, s*mr, a, bpk, c, apk)
		}
	})
}
