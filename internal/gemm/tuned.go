package gemm

import "repro/internal/pool"

// BlockConfig parameterizes the packed GEMM pipeline for the per-layer
// autotuner (internal/tune). The zero value selects exactly the default
// pipeline: the runtime-dispatched micro-kernel, B packed whole, every
// output tile accumulated across the full k reduction in registers —
// ParallelCfg with a zero BlockConfig is bit-identical to Parallel.
//
// Non-zero KC/NC select the cache-blocked Goto loop structure instead:
// B is packed one (KC x NC) block at a time and each block's
// contribution is added into C before the next block is packed, so the
// pack buffer and the C tiles it feeds stay cache-resident for shapes
// whose full packed B would not. Blocked variants are NOT bit-identical
// to the default path (each output element accumulates one partial sum
// per KC block instead of one full-k sum — the same float32 rounding
// trade Blocked makes against Naive); they agree within float32
// tolerance and are bit-identical to themselves at any worker count,
// which is the contract the tuner's measurements rely on.
type BlockConfig struct {
	// Kernel names the micro-kernel variant to run ("avx2-8x8",
	// "sse-4x8", "go-4x8", ...); "" or an unknown name selects the
	// runtime-dispatched kernel, so a stale tuning cache degrades to
	// the default instead of failing.
	Kernel string
	// KC is the k-blocking depth (reduction elements packed per block);
	// <= 0 selects the full reduction (no k blocking).
	KC int
	// NC is the n-blocking width (B columns packed per block), rounded
	// up to the kernel's NR; <= 0 selects the full width.
	NC int
	// Workers overrides the caller's strip fan-out; <= 0 keeps it.
	Workers int
}

// Blocked reports whether the config selects the cache-blocked loop
// structure (and therefore trades bit-identity with the default path
// for cache residency).
func (c BlockConfig) Blocked() bool { return c.KC > 0 || c.NC > 0 }

// IsDefault reports whether the config selects exactly the default
// packed pipeline.
func (c BlockConfig) IsDefault() bool {
	return c.Kernel == "" && !c.Blocked() && c.Workers <= 0
}

// kernelByName resolves a micro-kernel variant by name. "" and unknown
// names resolve to the dispatched kernel — tuned configs must degrade,
// never fail, when a cache recorded a kernel this host does not have.
func kernelByName(name string) *Kernel {
	if name == "" {
		return activeKernel()
	}
	for _, k := range variants {
		if k.Name == name {
			return k
		}
	}
	return activeKernel()
}

// KernelShape reports the register-tile geometry of the named variant,
// with ok false for names not registered on this host. The tuner uses
// it both to enumerate real variants and as surrogate features.
func KernelShape(name string) (mr, nr int, ok bool) {
	for _, k := range variants {
		if k.Name == name {
			return k.MR, k.NR, true
		}
	}
	return 0, 0, false
}

// ParallelCfg computes C = A*B + C like Parallel, but through an
// explicit BlockConfig: micro-kernel choice, optional KC/NC cache
// blocking, and an optional worker override. A zero config is
// bit-identical to Parallel(m, n, k, a, b, c, workers).
func ParallelCfg(m, n, k int, a, b, c []float32, workers int, cfg BlockConfig) {
	kn := kernelByName(cfg.Kernel)
	if cfg.Workers > 0 {
		workers = cfg.Workers
	}
	if !cfg.Blocked() {
		parallelKernel(kn, m, n, k, a, b, c, workers)
		return
	}
	blockedKernel(kn, m, n, k, a, b, c, workers, cfg.KC, cfg.NC)
}

// packBBlock packs the (kcb x ncb) block of row-major B (k x n) rooted
// at (p0, j0) into ceil(ncb/nr) panels of nr columns, kcb rows each,
// zero-padded past column j0+ncb. dst must have kcb*roundUp(ncb, nr)
// elements. This is packB restricted to one cache block.
func packBBlock(n, p0, kcb, j0, ncb, nr int, b, dst []float32) {
	np := (ncb + nr - 1) / nr
	for pj := 0; pj < np; pj++ {
		c0 := j0 + pj*nr
		panel := dst[pj*kcb*nr : (pj+1)*kcb*nr]
		w := min(nr, j0+ncb-c0)
		for p := 0; p < kcb; p++ {
			row := b[(p0+p)*n+c0 : (p0+p)*n+c0+w]
			copy(panel[p*nr:p*nr+w], row)
			for jj := w; jj < nr; jj++ {
				panel[p*nr+jj] = 0
			}
		}
	}
}

// packStripABlock packs rows [i0, i0+mr) x cols [p0, p0+kcb) of
// row-major A (m x k) column-major: dst[p*mr+ii] = A[i0+ii][p0+p],
// zero-padded past row m. dst must have kcb*mr elements.
func packStripABlock(m, k, i0, mr, p0, kcb int, a, dst []float32) {
	rows := min(mr, m-i0)
	for ii := 0; ii < rows; ii++ {
		arow := a[(i0+ii)*k+p0 : (i0+ii)*k+p0+kcb]
		for p, v := range arow {
			dst[p*mr+ii] = v
		}
	}
	for ii := rows; ii < mr; ii++ {
		for p := 0; p < kcb; p++ {
			dst[p*mr+ii] = 0
		}
	}
}

// stripBlock computes the contribution of the (p0, kcb) x (j0, ncb)
// block to C rows [i0, min(i0+MR, m)): it packs its own A strip block
// into apk (kcb*MR elements) and adds one partial sum per output
// element. Like strip, it is the exclusive-ownership work unit that
// makes the blocked path worker-count-invariant.
func stripBlock(kn *Kernel, m, n, k, i0, p0, kcb, j0, ncb int, a, bpk, c, apk []float32) {
	mr, nr := kn.MR, kn.NR
	packStripABlock(m, k, i0, mr, p0, kcb, a, apk)
	rows := min(mr, m-i0)
	np := (ncb + nr - 1) / nr
	var tbuf [maxTileElems]float32
	t := tbuf[:mr*nr]
	for pj := 0; pj < np; pj++ {
		kn.micro(kcb, apk, bpk[pj*kcb*nr:(pj+1)*kcb*nr], t)
		c0 := j0 + pj*nr
		cols := min(nr, j0+ncb-c0)
		for ii := 0; ii < rows; ii++ {
			crow := c[(i0+ii)*n+c0 : (i0+ii)*n+c0+cols]
			trow := t[ii*nr : ii*nr+cols]
			for jj := range crow {
				crow[jj] += trow[jj]
			}
		}
	}
}

// blockedKernel is the cache-blocked Goto loop structure: for each
// (NC, KC) block of B, pack it once, then partition the MR-row strips
// of C across workers. Blocks are processed sequentially (ascending j0,
// then ascending p0) with a completion barrier per block, and each
// strip is owned by exactly one worker within a block, so every output
// element accumulates its per-block partial sums in the same order at
// any worker count — the result is bit-identical to itself for every
// worker setting, though not to the unblocked path.
func blockedKernel(kn *Kernel, m, n, k int, a, b, c []float32, workers, kc, nc int) {
	checkDims("A", a, m*k)
	checkDims("B", b, k*n)
	checkDims("C", c, m*n)
	if m == 0 || n == 0 || k == 0 {
		return
	}
	mr, nr := kn.MR, kn.NR
	if kc <= 0 || kc > k {
		kc = k
	}
	if nc <= 0 || nc > n {
		nc = n
	}
	nc = (nc + nr - 1) / nr * nr
	strips := (m + mr - 1) / mr
	workers = effectiveWorkers(m, n, k, strips, workers, pool.DefaultWorkers())
	bpk := make([]float32, kc*((nc+nr-1)/nr)*nr)
	var apk []float32
	if workers <= 1 {
		apk = make([]float32, kc*mr)
	}
	for j0 := 0; j0 < n; j0 += nc {
		ncb := min(nc, n-j0)
		for p0 := 0; p0 < k; p0 += kc {
			kcb := min(kc, k-p0)
			packBBlock(n, p0, kcb, j0, ncb, nr, b, bpk)
			if workers <= 1 {
				for s := 0; s < strips; s++ {
					stripBlock(kn, m, n, k, s*mr, p0, kcb, j0, ncb, a, bpk, c, apk)
				}
				continue
			}
			pool.Run(workers, workers, func(w int) {
				lo := w * strips / workers
				hi := (w + 1) * strips / workers
				wapk := make([]float32, kcb*mr)
				for s := lo; s < hi; s++ {
					stripBlock(kn, m, n, k, s*mr, p0, kcb, j0, ncb, a, bpk, c, wapk)
				}
			})
		}
	}
}
