package gemm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = rng.Float32()*2 - 1
	}
	return s
}

func maxDiff(a, b []float32) float64 {
	var d float64
	for i := range a {
		if v := math.Abs(float64(a[i] - b[i])); v > d {
			d = v
		}
	}
	return d
}

func TestNaiveKnownValues(t *testing.T) {
	// [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
	a := []float32{1, 2, 3, 4}
	b := []float32{5, 6, 7, 8}
	c := make([]float32, 4)
	Naive(2, 2, 2, a, b, c)
	want := []float32{19, 22, 43, 50}
	for i := range want {
		if c[i] != want[i] {
			t.Errorf("c[%d] = %v, want %v", i, c[i], want[i])
		}
	}
}

func TestNaiveAccumulates(t *testing.T) {
	a := []float32{1}
	b := []float32{2}
	c := []float32{10}
	Naive(1, 1, 1, a, b, c)
	if c[0] != 12 {
		t.Errorf("accumulation: c = %v, want 12", c[0])
	}
}

func TestBlockedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {64, 64, 64}, {65, 130, 70}, {200, 17, 129}} {
		m, n, k := dims[0], dims[1], dims[2]
		a := randomSlice(rng, m*k)
		b := randomSlice(rng, k*n)
		c1 := make([]float32, m*n)
		c2 := make([]float32, m*n)
		Naive(m, n, k, a, b, c1)
		Blocked(m, n, k, a, b, c2)
		if d := maxDiff(c1, c2); d > 1e-4 {
			t.Errorf("%dx%dx%d: blocked differs from naive by %g", m, n, k, d)
		}
	}
}

func TestBlockedMatchesNaiveProperty(t *testing.T) {
	f := func(mm, nn, kk uint8, seed int64) bool {
		m, n, k := int(mm%20)+1, int(nn%20)+1, int(kk%20)+1
		rng := rand.New(rand.NewSource(seed))
		a := randomSlice(rng, m*k)
		b := randomSlice(rng, k*n)
		c1 := make([]float32, m*n)
		c2 := make([]float32, m*n)
		Naive(m, n, k, a, b, c1)
		Blocked(m, n, k, a, b, c2)
		return maxDiff(c1, c2) <= 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGemv(t *testing.T) {
	// [1 2; 3 4] * [5; 6] = [17; 39]
	a := []float32{1, 2, 3, 4}
	x := []float32{5, 6}
	y := make([]float32, 2)
	Gemv(2, 2, a, x, y)
	if y[0] != 17 || y[1] != 39 {
		t.Errorf("y = %v, want [17 39]", y)
	}
}

func TestGemvMatchesGemmNx1(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, n := 37, 53
	a := randomSlice(rng, m*n)
	x := randomSlice(rng, n)
	y1 := make([]float32, m)
	y2 := make([]float32, m)
	Gemv(m, n, a, x, y1)
	Naive(m, 1, n, a, x, y2)
	if d := maxDiff(y1, y2); d > 1e-4 {
		t.Errorf("gemv differs from gemm by %g", d)
	}
}

func TestTranspose(t *testing.T) {
	src := []float32{1, 2, 3, 4, 5, 6} // 2x3
	dst := make([]float32, 6)
	Transpose(2, 3, src, dst)
	want := []float32{1, 4, 2, 5, 3, 6}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(r, c uint8, seed int64) bool {
		rows, cols := int(r%10)+1, int(c%10)+1
		rng := rand.New(rand.NewSource(seed))
		src := randomSlice(rng, rows*cols)
		mid := make([]float32, rows*cols)
		back := make([]float32, rows*cols)
		Transpose(rows, cols, src, mid)
		Transpose(cols, rows, mid, back)
		return maxDiff(src, back) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDimCheckPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("short slice should panic")
		}
	}()
	Naive(2, 2, 2, []float32{1}, make([]float32, 4), make([]float32, 4))
}
