package gemm

import (
	"os"
	"sync/atomic"
)

// Kernel describes one register micro-kernel and the pack-buffer
// geometry it consumes. The packed GEMM is generic over this
// descriptor: packB lays B out in NR-wide panels, packStripA packs
// MR-row strips of A, and the micro func reduces one MR x NR tile.
// Dispatch picks one Kernel per process at init (see initKernel); the
// whole pack/strip pipeline reads the geometry from the descriptor, so
// no per-call ISA branching happens anywhere in the hot path.
//
// Bit-equality contract: every micro-kernel — any ISA, any geometry —
// accumulates each output element t[ii*NR+jj] as
//
//	sum over p ascending of one float32 multiply then one float32 add
//
// with no fused multiply-add and no reassociation. Per-element
// rounding therefore never depends on the tile shape, so Packed /
// Parallel produce byte-identical C for every Kernel, and all of them
// match the pure-Go fallback exactly (pinned by the dispatch equality
// tests). This is why the AVX2 and NEON kernels use mul+add pairs
// rather than FMA: FMA skips the intermediate rounding and would break
// the contract.
type Kernel struct {
	// Name identifies the variant in -version output, /statusz and the
	// bench JSONs, e.g. "sse-4x8", "avx2-8x8", "neon-8x8", "go-4x8".
	Name string
	// MR x NR is the register tile: MR rows of A by NR columns of B.
	MR, NR int
	// micro computes the MR x NR tile from a packed A strip (p-major,
	// MR values per step, k*MR elements) and a packed B panel (p-major,
	// NR values per step, k*NR elements) into t[:MR*NR]. k may be 0, in
	// which case t must be zeroed.
	micro func(k int, ap, bp, t []float32)
}

// maxTileElems bounds MR*NR across all kernels so the per-strip tile
// scratch can live on the stack. registerKernel enforces it.
const maxTileElems = 128

// fallbackKernel is the pure-Go kernel every build has: the 4x8
// geometry of the original SSE micro-kernel with microTileGo as the
// reference reduction. QSDNN_DISABLE_SIMD forces it; every SIMD
// variant must be bit-equal to it.
var fallbackKernel = &Kernel{Name: "go-4x8", MR: 4, NR: 8, micro: microTileGo}

// variants lists every kernel usable on this host, fastest first, with
// the pure-Go fallback always last. Populated by init (per GOARCH) and
// walked by the dispatch equality tests.
var variants = []*Kernel{fallbackKernel}

// active is the dispatched kernel. An atomic pointer so tests can
// force variants under -race without a data race against concurrent
// GEMM calls.
var active atomic.Pointer[Kernel]

// registerKernel prepends a detected kernel, keeping the registration
// order (fastest first) ahead of the fallback.
func registerKernel(k *Kernel) {
	if k.MR*k.NR > maxTileElems {
		panic("gemm: kernel tile exceeds maxTileElems: " + k.Name)
	}
	variants = append([]*Kernel{k}, variants...)
}

// simdDisabled reports whether the QSDNN_DISABLE_SIMD environment knob
// forces the pure-Go fallback ("" and "0" mean enabled).
func simdDisabled() bool {
	v := os.Getenv("QSDNN_DISABLE_SIMD")
	return v != "" && v != "0"
}

// pickKernel returns the kernel dispatch selects: the first registered
// variant, or the pure-Go fallback when SIMD is disabled.
func pickKernel(disabled bool) *Kernel {
	if disabled {
		return fallbackKernel
	}
	return variants[0]
}

// initKernel (re-)runs dispatch. Called once from init; tests call it
// again around environment changes.
func initKernel() {
	active.Store(pickKernel(simdDisabled()))
}

func init() {
	// Architecture init functions (registerAMD64Kernels, ...) run
	// before this package-level init uses the registry only if ordering
	// is explicit, so detection is invoked here directly.
	registerArchKernels()
	initKernel()
}

// ActiveKernel reports the name of the dispatched micro-kernel, e.g.
// "avx2-8x8". Surfaced through `qsdnn version` and the serve /statusz
// payload so recorded benchmarks say which ISA produced them.
func ActiveKernel() string { return active.Load().Name }

// KernelVariants lists every micro-kernel usable on this host, fastest
// first, ending with the pure-Go fallback.
func KernelVariants() []string {
	names := make([]string, len(variants))
	for i, k := range variants {
		names[i] = k.Name
	}
	return names
}

// activeKernel returns the dispatched descriptor.
func activeKernel() *Kernel { return active.Load() }

// setKernelForTest forces a specific variant and returns a restore
// func. Test-only.
func setKernelForTest(k *Kernel) func() {
	prev := active.Load()
	active.Store(k)
	return func() { active.Store(prev) }
}

// microTileGeneric is the shape-generic pure-Go reduction: the
// reference every specialized micro-kernel (any geometry, any ISA) is
// tested against tile-for-tile. Each element accumulates in ascending
// p order with separate multiply and add, exactly the contract above.
func microTileGeneric(k, mr, nr int, ap, bp, t []float32) {
	t = t[:mr*nr]
	for i := range t {
		t[i] = 0
	}
	for p := 0; p < k; p++ {
		a := ap[p*mr : p*mr+mr : p*mr+mr]
		b := bp[p*nr : p*nr+nr : p*nr+nr]
		for ii, av := range a {
			trow := t[ii*nr : ii*nr+nr : ii*nr+nr]
			for jj, bv := range b {
				trow[jj] += av * bv
			}
		}
	}
}

// microTileGo8x8 is the pure-Go 8x8 reduction the AVX2 and NEON
// kernels are pinned against.
func microTileGo8x8(k int, ap, bp, t []float32) {
	microTileGeneric(k, 8, 8, ap, bp, t)
}
