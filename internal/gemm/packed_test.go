package gemm

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bitEqual reports whether two slices carry identical IEEE-754 bit
// patterns (so +0 != -0 and NaN payloads must match exactly).
func bitEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// edgeShapes are dimensions chosen to stress the tile/panel boundaries
// of every dispatched geometry: below one tile, exactly one tile, odd
// sizes straddling both the 4x8 and 8x8 register tiles, and empty
// reductions.
var edgeShapes = [][3]int{
	{1, 1, 1},
	{1, 1, 0}, // k=0: C must be left untouched
	{4, 8, 16},
	{8, 8, 8},
	{3, 7, 5},
	{5, 9, 3},
	{4, 8, 1},
	{9, 17, 5},
	{17, 23, 31},
	{64, 64, 64},
	{65, 130, 70},
	{200, 17, 129},
	{1, 100, 100},
	{100, 1, 100},
	{100, 100, 1},
}

func TestPackedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dims := range edgeShapes {
		m, n, k := dims[0], dims[1], dims[2]
		a := randomSlice(rng, m*k)
		b := randomSlice(rng, k*n)
		c1 := randomSlice(rng, m*n) // non-zero C: both paths must accumulate
		c2 := append([]float32(nil), c1...)
		Naive(m, n, k, a, b, c1)
		Packed(m, n, k, a, b, c2)
		if d := maxDiff(c1, c2); d > 1e-4 {
			t.Errorf("%dx%dx%d: packed differs from naive by %g", m, n, k, d)
		}
	}
}

// TestParallelBitIdenticalAcrossWorkers pins the tentpole contract:
// every worker count produces byte-for-byte the same output as the
// sequential packed path.
func TestParallelBitIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, dims := range edgeShapes {
		m, n, k := dims[0], dims[1], dims[2]
		a := randomSlice(rng, m*k)
		b := randomSlice(rng, k*n)
		c0 := randomSlice(rng, m*n)
		want := append([]float32(nil), c0...)
		Packed(m, n, k, a, b, want)
		for _, w := range []int{1, 2, 3, 4, 7, 8, 16, 100} {
			got := append([]float32(nil), c0...)
			Parallel(m, n, k, a, b, got, w)
			if !bitEqual(want, got) {
				t.Errorf("%dx%dx%d workers=%d: output not bit-identical to sequential", m, n, k, w)
			}
		}
	}
}

func TestParallelKZeroLeavesCUntouched(t *testing.T) {
	c := []float32{1, 2, 3, 4}
	want := append([]float32(nil), c...)
	Parallel(2, 2, 0, nil, nil, c, 4)
	if !bitEqual(c, want) {
		t.Errorf("k=0 modified C: got %v, want %v", c, want)
	}
}

// Per-variant micro-kernel and whole-GEMM bit-equality live in
// dispatch_test.go (TestMicroKernelVariantsMatchGeneric,
// TestDispatchVariantsBitEqual).

// TestParallelMatchesNaiveProperty is the quick-check analogue of
// TestBlockedMatchesNaiveProperty for the packed kernels, also
// asserting worker-count bit-invariance on every drawn shape.
func TestParallelMatchesNaiveProperty(t *testing.T) {
	f := func(mm, nn, kk uint8, workers uint8, seed int64) bool {
		m, n, k := int(mm%33)+1, int(nn%33)+1, int(kk%33) // k may be 0
		w := int(workers%9) + 1
		rng := rand.New(rand.NewSource(seed))
		a := randomSlice(rng, m*k)
		b := randomSlice(rng, k*n)
		c0 := randomSlice(rng, m*n)
		cn := append([]float32(nil), c0...)
		cs := append([]float32(nil), c0...)
		cw := append([]float32(nil), c0...)
		Naive(m, n, k, a, b, cn)
		Packed(m, n, k, a, b, cs)
		Parallel(m, n, k, a, b, cw, w)
		return maxDiff(cn, cs) <= 1e-4 && bitEqual(cs, cw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// FuzzGEMMParallelMatchesNaive fuzzes shapes and worker counts,
// asserting Packed stays within float32 tolerance of Naive and that
// every worker count is bit-identical to the sequential path.
func FuzzGEMMParallelMatchesNaive(f *testing.F) {
	f.Add(uint8(4), uint8(8), uint8(16), uint8(3), int64(1))
	f.Add(uint8(1), uint8(1), uint8(0), uint8(8), int64(2))
	f.Add(uint8(33), uint8(9), uint8(5), uint8(1), int64(3))
	f.Fuzz(func(t *testing.T, mm, nn, kk, workers uint8, seed int64) {
		m, n, k := int(mm%40)+1, int(nn%40)+1, int(kk%40)
		w := int(workers%16) + 1
		rng := rand.New(rand.NewSource(seed))
		a := randomSlice(rng, m*k)
		b := randomSlice(rng, k*n)
		c0 := randomSlice(rng, m*n)
		cn := append([]float32(nil), c0...)
		cs := append([]float32(nil), c0...)
		Naive(m, n, k, a, b, cn)
		Packed(m, n, k, a, b, cs)
		if d := maxDiff(cn, cs); d > 1e-4 {
			t.Fatalf("%dx%dx%d: packed differs from naive by %g", m, n, k, d)
		}
		cw := append([]float32(nil), c0...)
		Parallel(m, n, k, a, b, cw, w)
		if !bitEqual(cs, cw) {
			t.Fatalf("%dx%dx%d workers=%d: not bit-identical to sequential", m, n, k, w)
		}
	})
}

func TestPackedDimCheckPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		call func()
	}{
		{"short A", func() { Packed(2, 2, 2, make([]float32, 3), make([]float32, 4), make([]float32, 4)) }},
		{"short B", func() { Packed(2, 2, 2, make([]float32, 4), make([]float32, 3), make([]float32, 4)) }},
		{"short C", func() { Parallel(2, 2, 2, make([]float32, 4), make([]float32, 4), make([]float32, 3), 2) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on short slice")
				}
			}()
			tc.call()
		})
	}
}

// TestPackBLayout pins the panel layout the micro-kernels assume, at
// both dispatched panel widths.
func TestPackBLayout(t *testing.T) {
	for _, nr := range []int{4, 8} {
		k, n := 2, nr+2 // one full panel plus a ragged 2-wide edge
		b := make([]float32, k*n)
		for i := range b {
			b[i] = float32(i + 1)
		}
		dst := make([]float32, k*2*nr)
		packB(k, n, nr, b, dst)
		for p := 0; p < k; p++ {
			for j := 0; j < n; j++ {
				pj, jj := j/nr, j%nr
				got := dst[pj*k*nr+p*nr+jj]
				if got != b[p*n+j] {
					t.Errorf("nr=%d panel[%d] p=%d jj=%d = %v, want %v", nr, pj, p, jj, got, b[p*n+j])
				}
			}
			for jj := n % nr; jj < nr; jj++ {
				if got := dst[(n/nr)*k*nr+p*nr+jj]; got != 0 {
					t.Errorf("nr=%d ragged pad p=%d jj=%d = %v, want 0", nr, p, jj, got)
				}
			}
		}
	}
}

func TestPackStripALayout(t *testing.T) {
	for _, mr := range []int{4, 8} {
		m, k := mr+2, 3 // second strip is ragged: two rows then zero pad
		a := make([]float32, m*k)
		for i := range a {
			a[i] = float32(i + 1)
		}
		dst := make([]float32, k*mr)
		packStripA(m, k, mr, mr, a, dst)
		for p := 0; p < k; p++ {
			for ii := 0; ii < mr; ii++ {
				want := float32(0)
				if mr+ii < m {
					want = a[(mr+ii)*k+p]
				}
				if got := dst[p*mr+ii]; got != want {
					t.Errorf("mr=%d dst[p=%d ii=%d] = %v, want %v", mr, p, ii, got, want)
				}
			}
		}
	}
}

func ExampleParallel() {
	a := []float32{1, 2, 3, 4}
	b := []float32{5, 6, 7, 8}
	c := make([]float32, 4)
	Parallel(2, 2, 2, a, b, c, 4)
	fmt.Println(c)
	// Output: [19 22 43 50]
}
