//go:build !amd64 && !arm64

package gemm

// registerArchKernels registers nothing on architectures without a
// hand-written micro-kernel; dispatch stays on the pure-Go fallback.
func registerArchKernels() {}
