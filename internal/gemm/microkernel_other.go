//go:build !amd64

package gemm

// microTile uses the portable micro-kernel on non-amd64 targets.
func microTile(k int, ap, bp []float32, t *[mr * nr]float32) {
	if k <= 0 {
		*t = [mr * nr]float32{}
		return
	}
	microTileGo(k, ap, bp, t)
}
