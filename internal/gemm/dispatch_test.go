package gemm

import (
	"math/rand"
	"os"
	"regexp"
	"runtime"
	"slices"
	"strconv"
	"testing"
)

// TestMicroKernelVariantsMatchGeneric pins every dispatched
// micro-kernel against the shape-generic pure-Go reduction, bit for
// bit, tile for tile — including k=0 (tile must be zeroed) and k
// values that would expose accumulation-order or FMA differences.
func TestMicroKernelVariantsMatchGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, kn := range variants {
		for _, k := range []int{0, 1, 2, 3, 7, 64, 513} {
			ap := randomSlice(rng, max(1, k*kn.MR))
			bp := randomSlice(rng, max(1, k*kn.NR))
			got := make([]float32, kn.MR*kn.NR)
			want := make([]float32, kn.MR*kn.NR)
			kn.micro(k, ap, bp, got)
			microTileGeneric(k, kn.MR, kn.NR, ap, bp, want)
			if !bitEqual(got, want) {
				t.Errorf("%s k=%d: micro-kernel not bit-identical to generic Go:\n got %v\nwant %v", kn.Name, k, got, want)
			}
		}
	}
}

// TestDispatchVariantsBitEqual is the cross-ISA contract: for every
// registered kernel — SSE, AVX2 or NEON, whichever this host has —
// the whole packed GEMM is byte-identical to the pure-Go fallback on
// every edge shape (1x1, k=0, dims not multiples of either MR or NR)
// and at every worker count. Per-element rounding never depends on
// the tile geometry, so 4x8 and 8x8 kernels must agree exactly.
func TestDispatchVariantsBitEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, dims := range edgeShapes {
		m, n, k := dims[0], dims[1], dims[2]
		a := randomSlice(rng, m*k)
		b := randomSlice(rng, k*n)
		c0 := randomSlice(rng, m*n)
		want := append([]float32(nil), c0...)
		parallelKernel(fallbackKernel, m, n, k, a, b, want, 1)
		for _, kn := range variants {
			for _, w := range []int{1, 3, 8} {
				got := append([]float32(nil), c0...)
				parallelKernel(kn, m, n, k, a, b, got, w)
				if !bitEqual(want, got) {
					t.Errorf("%s %dx%dx%d workers=%d: not bit-identical to pure-Go fallback", kn.Name, m, n, k, w)
				}
			}
		}
	}
}

// FuzzDispatchKernelsBitEqual fuzzes shapes, asserting every variant
// stays bit-identical to the pure-Go fallback.
func FuzzDispatchKernelsBitEqual(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint8(0), int64(1))
	f.Add(uint8(9), uint8(17), uint8(5), int64(2))
	f.Add(uint8(8), uint8(8), uint8(8), int64(3))
	f.Fuzz(func(t *testing.T, mm, nn, kk uint8, seed int64) {
		m, n, k := int(mm%40)+1, int(nn%40)+1, int(kk%40)
		rng := rand.New(rand.NewSource(seed))
		a := randomSlice(rng, m*k)
		b := randomSlice(rng, k*n)
		c0 := randomSlice(rng, m*n)
		want := append([]float32(nil), c0...)
		parallelKernel(fallbackKernel, m, n, k, a, b, want, 1)
		for _, kn := range variants {
			got := append([]float32(nil), c0...)
			parallelKernel(kn, m, n, k, a, b, got, 4)
			if !bitEqual(want, got) {
				t.Fatalf("%s %dx%dx%d: not bit-identical to pure-Go fallback", kn.Name, m, n, k)
			}
		}
	})
}

// TestKernelRegistry pins the dispatch inventory: the fallback is
// always last, the architecture's baseline kernel is present, and the
// active kernel is one of the registered variants.
func TestKernelRegistry(t *testing.T) {
	names := KernelVariants()
	if len(names) == 0 || names[len(names)-1] != "go-4x8" {
		t.Fatalf("variants = %v, want pure-Go fallback last", names)
	}
	if runtime.GOARCH == "amd64" && !slices.Contains(names, "sse-4x8") {
		t.Errorf("amd64 variants = %v, want sse-4x8 registered", names)
	}
	if runtime.GOARCH == "arm64" && !slices.Contains(names, "neon-8x8") {
		t.Errorf("arm64 variants = %v, want neon-8x8 registered", names)
	}
	if !slices.Contains(names, ActiveKernel()) {
		t.Errorf("active kernel %q not in variants %v", ActiveKernel(), names)
	}
	for _, kn := range variants {
		if kn.MR*kn.NR > maxTileElems {
			t.Errorf("%s tile %dx%d exceeds maxTileElems", kn.Name, kn.MR, kn.NR)
		}
	}
}

// TestDisableSIMDKnob exercises the QSDNN_DISABLE_SIMD environment
// knob end to end: with it set, re-running dispatch selects the
// pure-Go fallback and GEMM results stay byte-identical to the SIMD
// path's.
func TestDisableSIMDKnob(t *testing.T) {
	// Registered before Setenv so it runs after the env var is
	// restored: re-dispatch back to the host's real kernel.
	t.Cleanup(initKernel)
	t.Setenv("QSDNN_DISABLE_SIMD", "1")
	initKernel()
	if got := ActiveKernel(); got != "go-4x8" {
		t.Fatalf("ActiveKernel() = %q with QSDNN_DISABLE_SIMD=1, want go-4x8", got)
	}
	rng := rand.New(rand.NewSource(31))
	m, n, k := 33, 29, 17
	a := randomSlice(rng, m*k)
	b := randomSlice(rng, k*n)
	c0 := randomSlice(rng, m*n)
	want := append([]float32(nil), c0...)
	Parallel(m, n, k, a, b, want, 4) // fallback active
	for _, kn := range variants {
		got := append([]float32(nil), c0...)
		parallelKernel(kn, m, n, k, a, b, got, 4)
		if !bitEqual(want, got) {
			t.Errorf("%s: disabled-SIMD result not bit-identical to %s", kn.Name, ActiveKernel())
		}
	}
}

// TestDisableSIMDZeroMeansEnabled pins the knob's documented "" / "0"
// escape hatch.
func TestDisableSIMDZeroMeansEnabled(t *testing.T) {
	t.Cleanup(initKernel)
	t.Setenv("QSDNN_DISABLE_SIMD", "0")
	initKernel()
	if got, first := ActiveKernel(), variants[0].Name; got != first {
		t.Errorf("ActiveKernel() = %q with QSDNN_DISABLE_SIMD=0, want %q", got, first)
	}
}

// TestPickKernel covers the selection function directly.
func TestPickKernel(t *testing.T) {
	if pickKernel(true) != fallbackKernel {
		t.Error("pickKernel(disabled) did not select the pure-Go fallback")
	}
	if pickKernel(false) != variants[0] {
		t.Error("pickKernel(enabled) did not select the first registered variant")
	}
}

// TestSetKernelForTest pins the test hook's restore semantics (it
// backs the cross-package forced-variant tests).
func TestSetKernelForTest(t *testing.T) {
	before := ActiveKernel()
	restore := setKernelForTest(fallbackKernel)
	if ActiveKernel() != "go-4x8" {
		t.Errorf("forced kernel = %q, want go-4x8", ActiveKernel())
	}
	restore()
	if ActiveKernel() != before {
		t.Errorf("restore left %q, want %q", ActiveKernel(), before)
	}
}

// TestNEONEncodings statically verifies the WORD-encoded instructions
// in microkernel_arm64.s against the A64 encoding formulas (the Go
// arm64 assembler has no mnemonic for unfused vector FMUL/FADD, so
// those two are hand-encoded):
//
//	FMUL Vd.4S, Vn.4S, Vm.4S = 0x6E20DC00 | m<<16 | n<<5 | d
//	FADD Vd.4S, Vn.4S, Vm.4S = 0x4E20D400 | m<<16 | n<<5 | d
//
// It parses every `WORD $0x... // FMUL|FADD Vd.4S, Vn.4S, Vm.4S` line
// and recomputes the constant from the commented operands, so the
// encodings stay checked on every architecture — no qemu needed. A
// real arm64 build is additionally covered by the runtime bit-equality
// suites above.
func TestNEONEncodings(t *testing.T) {
	src, err := os.ReadFile("microkernel_arm64.s")
	if err != nil {
		t.Fatalf("reading asm source: %v", err)
	}
	re := regexp.MustCompile(`WORD \$0x([0-9A-Fa-f]{8}) // (FMUL|FADD) V(\d+)\.4S, V(\d+)\.4S, V(\d+)\.4S`)
	matches := re.FindAllStringSubmatch(string(src), -1)
	if len(matches) != 32 { // 8 dup rows x (2 FMUL + 2 FADD)
		t.Fatalf("found %d WORD-encoded FMUL/FADD lines, want 32", len(matches))
	}
	for _, mt := range matches {
		word, _ := strconv.ParseUint(mt[1], 16, 32)
		d, _ := strconv.Atoi(mt[3])
		n, _ := strconv.Atoi(mt[4])
		m, _ := strconv.Atoi(mt[5])
		base := uint64(0x6E20DC00) // FMUL (vector, single-precision)
		if mt[2] == "FADD" {
			base = 0x4E20D400
		}
		want := base | uint64(m)<<16 | uint64(n)<<5 | uint64(d)
		if word != want {
			t.Errorf("%s V%d, V%d, V%d: WORD $0x%08X, formula gives 0x%08X", mt[2], d, n, m, word, want)
		}
	}
}
