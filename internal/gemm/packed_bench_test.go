package gemm

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchGemm measures one GEMM backend at the given cube size.
func benchGemm(b *testing.B, size int, f func(m, n, k int, a, bb, c []float32)) {
	rng := rand.New(rand.NewSource(1))
	a := randomSlice(rng, size*size)
	bb := randomSlice(rng, size*size)
	c := make([]float32, size*size)
	b.SetBytes(int64(2 * size * size * size * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(size, size, size, a, bb, c)
	}
}

// BenchmarkGEMMBackends compares the GEMM backends at the 512-cube the
// ISSUE targets and at a conv-lowering-like 128 cube. Sub-benchmark
// names use "/" (not "-<size>") so the bench.sh JSON reducer, which
// strips the trailing -GOMAXPROCS suffix, never confuses a size for a
// CPU count.
func BenchmarkGEMMBackends(b *testing.B) {
	b.Logf("active kernel: %s", ActiveKernel())
	for _, size := range []int{128, 512} {
		b.Run(fmt.Sprintf("naive/%d", size), func(b *testing.B) { benchGemm(b, size, Naive) })
		b.Run(fmt.Sprintf("blocked/%d", size), func(b *testing.B) { benchGemm(b, size, Blocked) })
		b.Run(fmt.Sprintf("packed/%d", size), func(b *testing.B) { benchGemm(b, size, Packed) })
		b.Run(fmt.Sprintf("parallel8/%d", size), func(b *testing.B) {
			benchGemm(b, size, func(m, n, k int, a, bb, c []float32) { Parallel(m, n, k, a, bb, c, 8) })
		})
	}
}

// BenchmarkGEMMKernelVariants runs the packed path once per registered
// micro-kernel (AVX2 vs SSE vs pure-Go on amd64), quantifying what the
// runtime dispatch buys on this host.
func BenchmarkGEMMKernelVariants(b *testing.B) {
	for _, kn := range variants {
		kn := kn
		for _, size := range []int{128, 512} {
			b.Run(fmt.Sprintf("%s/%d", kn.Name, size), func(b *testing.B) {
				benchGemm(b, size, func(m, n, k int, a, bb, c []float32) {
					parallelKernel(kn, m, n, k, a, bb, c, 1)
				})
			})
		}
	}
}

// BenchmarkGEMMParallelCrossover brackets parallelFloorFlops: sizes
// around the measured crossover where fanning out starts beating the
// inline packed path. parallel8 at 128 and 160 runs inline (below the
// floor); 192 and 256 fan out.
func BenchmarkGEMMParallelCrossover(b *testing.B) {
	for _, size := range []int{128, 160, 192, 256} {
		b.Run(fmt.Sprintf("packed/%d", size), func(b *testing.B) { benchGemm(b, size, Packed) })
		b.Run(fmt.Sprintf("parallel8/%d", size), func(b *testing.B) {
			benchGemm(b, size, func(m, n, k int, a, bb, c []float32) { Parallel(m, n, k, a, bb, c, 8) })
		})
	}
}
