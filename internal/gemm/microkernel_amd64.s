//go:build amd64

#include "textflag.h"

// func microKernelSSE(k int, ap, bp, t *float32)
//
// SSE 4x8 micro-kernel. Eight XMM accumulators hold the 4x8 tile
// (X0/X1 = row 0 cols 0-3/4-7, ..., X6/X7 = row 3). Per k step: load
// the nr=8 B values once, broadcast each of the mr=4 A values, and do
// one MULPS + one ADDPS per half-row. Each output element sees exactly
// one IEEE-754 single multiply and one add per step, in ascending p
// order — the same operation sequence as microTileGo, so the results
// are bit-identical (MULPS/ADDPS are lane-wise IEEE single ops).
// SSE is baseline on amd64, so no feature detection is needed.
TEXT ·microKernelSSE(SB), NOSPLIT, $0-32
	MOVQ k+0(FP), CX
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), DI
	MOVQ t+24(FP), DX

	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORPS X4, X4
	XORPS X5, X5
	XORPS X6, X6
	XORPS X7, X7

	TESTQ CX, CX
	JZ    store

loop:
	MOVUPS (DI), X8      // b[0:4]
	MOVUPS 16(DI), X9    // b[4:8]

	MOVSS  (SI), X10     // broadcast a0
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X0
	MULPS  X9, X11
	ADDPS  X11, X1

	MOVSS  4(SI), X10    // broadcast a1
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X2
	MULPS  X9, X11
	ADDPS  X11, X3

	MOVSS  8(SI), X10    // broadcast a2
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X4
	MULPS  X9, X11
	ADDPS  X11, X5

	MOVSS  12(SI), X10   // broadcast a3
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X6
	MULPS  X9, X11
	ADDPS  X11, X7

	ADDQ $16, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  loop

store:
	MOVUPS X0, (DX)
	MOVUPS X1, 16(DX)
	MOVUPS X2, 32(DX)
	MOVUPS X3, 48(DX)
	MOVUPS X4, 64(DX)
	MOVUPS X5, 80(DX)
	MOVUPS X6, 96(DX)
	MOVUPS X7, 112(DX)
	RET

// func microKernelAVX2(k int, ap, bp, t *float32)
//
// AVX2 8x8 micro-kernel. Eight YMM accumulators hold the 8x8 tile
// (Y0 = row 0, ..., Y7 = row 7, eight floats per register). Per k
// step: load the nr=8 B values once into Y8, broadcast each of the
// mr=8 A values, and do one VMULPS + one VADDPS per row. Each output
// element sees exactly one IEEE-754 single multiply and one separate
// add per step, in ascending p order — the same operation sequence as
// microTileGo8x8, so the results are bit-identical. Deliberately no
// VFMADD*: fused multiply-add skips the intermediate rounding and
// would break the cross-kernel bit-equality contract (kernel.go).
// Callers gate on hasAVX2 (CPUID + XGETBV), so no runtime check here.
TEXT ·microKernelAVX2(SB), NOSPLIT, $0-32
	MOVQ k+0(FP), CX
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), DI
	MOVQ t+24(FP), DX

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7

	TESTQ CX, CX
	JZ    avx2store

avx2loop:
	VMOVUPS (DI), Y8        // b[0:8]

	VBROADCASTSS (SI), Y9   // a0
	VMULPS       Y8, Y9, Y9
	VADDPS       Y9, Y0, Y0
	VBROADCASTSS 4(SI), Y9  // a1
	VMULPS       Y8, Y9, Y9
	VADDPS       Y9, Y1, Y1
	VBROADCASTSS 8(SI), Y9  // a2
	VMULPS       Y8, Y9, Y9
	VADDPS       Y9, Y2, Y2
	VBROADCASTSS 12(SI), Y9 // a3
	VMULPS       Y8, Y9, Y9
	VADDPS       Y9, Y3, Y3
	VBROADCASTSS 16(SI), Y9 // a4
	VMULPS       Y8, Y9, Y9
	VADDPS       Y9, Y4, Y4
	VBROADCASTSS 20(SI), Y9 // a5
	VMULPS       Y8, Y9, Y9
	VADDPS       Y9, Y5, Y5
	VBROADCASTSS 24(SI), Y9 // a6
	VMULPS       Y8, Y9, Y9
	VADDPS       Y9, Y6, Y6
	VBROADCASTSS 28(SI), Y9 // a7
	VMULPS       Y8, Y9, Y9
	VADDPS       Y9, Y7, Y7

	ADDQ $32, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  avx2loop

avx2store:
	VMOVUPS Y0, (DX)
	VMOVUPS Y1, 32(DX)
	VMOVUPS Y2, 64(DX)
	VMOVUPS Y3, 96(DX)
	VMOVUPS Y4, 128(DX)
	VMOVUPS Y5, 160(DX)
	VMOVUPS Y6, 192(DX)
	VMOVUPS Y7, 224(DX)
	VZEROUPPER
	RET
