// Package gemm provides the dense matrix-multiply and matrix-vector
// routines the convolution lowerings (im2col / im2row / kn2row) and the
// fully-connected kernels are built on. All matrices are row-major
// float32 slices. Two GEMM variants are provided — a straightforward
// triple loop and a cache-blocked version — mirroring how a
// dependency-free "Vanilla" engine differs from a tuned BLAS.
package gemm

import "fmt"

// checkDims panics when a slice is too short for the stated dimensions;
// out-of-range writes in kernels would otherwise corrupt silently.
func checkDims(name string, s []float32, want int) {
	if len(s) < want {
		panic(fmt.Sprintf("gemm: %s has %d elements, need %d", name, len(s), want))
	}
}

// Naive computes C = A*B + C for row-major A (m x k), B (k x n),
// C (m x n) with the textbook ikj loop order.
func Naive(m, n, k int, a, b, c []float32) {
	checkDims("A", a, m*k)
	checkDims("B", b, k*n)
	checkDims("C", c, m*n)
	for i := 0; i < m; i++ {
		arow := a[i*k : i*k+k]
		crow := c[i*n : i*n+n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b[p*n : p*n+n]
			for j := range crow {
				crow[j] += av * brow[j]
			}
		}
	}
}

// blockSize is the square tile edge used by Blocked. 64 float32 rows of
// that width fit comfortably in L1 on common cores.
const blockSize = 64

// Blocked computes C = A*B + C with square cache tiling. Results are
// NOT bit-identical to Naive: tiling splits each dot product into
// per-block partial sums, so float32 rounding differs, but stays within
// the tolerance the kernel tests use. The contract the kernel layer
// enforces is the one Packed/Parallel state: for a given backend, the
// output is bit-identical at every worker count, and all backends agree
// with Naive within float32 tolerance.
//
// Demoted: Blocked is kept as a reference implementation and as a
// latency-diversity entry for LUT experiments, NOT as a default
// candidate for the tuned-library backend. Measured on the bench host
// it is slower than Naive at both 128 (1.33ms vs 1.13ms) and 512
// (92ms vs 75ms): square tiling re-streams C sub-rows per k-block
// without the packing or register tiling that makes the cost pay off,
// while Naive's ikj order already walks B and C with unit stride. The
// tuned paths use Packed/Parallel exclusively (see DESIGN.md, "Why
// Blocked lost its default slot").
func Blocked(m, n, k int, a, b, c []float32) {
	checkDims("A", a, m*k)
	checkDims("B", b, k*n)
	checkDims("C", c, m*n)
	for i0 := 0; i0 < m; i0 += blockSize {
		iMax := min(i0+blockSize, m)
		for p0 := 0; p0 < k; p0 += blockSize {
			pMax := min(p0+blockSize, k)
			for j0 := 0; j0 < n; j0 += blockSize {
				jMax := min(j0+blockSize, n)
				for i := i0; i < iMax; i++ {
					crow := c[i*n : i*n+n]
					for p := p0; p < pMax; p++ {
						av := a[i*k+p]
						if av == 0 {
							continue
						}
						brow := b[p*n : p*n+n]
						for j := j0; j < jMax; j++ {
							crow[j] += av * brow[j]
						}
					}
				}
			}
		}
	}
}

// Gemv computes y = A*x + y for row-major A (m x n), x (n), y (m).
// This is the cuBLAS-style routine used for batch-1 fully-connected
// layers.
func Gemv(m, n int, a, x, y []float32) {
	checkDims("A", a, m*n)
	checkDims("x", x, n)
	checkDims("y", y, m)
	for i := 0; i < m; i++ {
		arow := a[i*n : i*n+n]
		var sum float32
		for j, v := range arow {
			sum += v * x[j]
		}
		y[i] += sum
	}
}

// Transpose writes the transpose of row-major src (rows x cols) into
// dst (cols x rows).
func Transpose(rows, cols int, src, dst []float32) {
	checkDims("src", src, rows*cols)
	checkDims("dst", dst, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			dst[j*rows+i] = src[i*cols+j]
		}
	}
}
