package gemm

import (
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
)

// TestParallelCfgZeroBitIdentical pins the tuner's default-path
// contract: a zero BlockConfig is byte-for-byte the default pipeline.
func TestParallelCfgZeroBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, dims := range edgeShapes {
		m, n, k := dims[0], dims[1], dims[2]
		a := randomSlice(rng, m*k)
		b := randomSlice(rng, k*n)
		c0 := randomSlice(rng, m*n)
		want := append([]float32(nil), c0...)
		Parallel(m, n, k, a, b, want, 4)
		got := append([]float32(nil), c0...)
		ParallelCfg(m, n, k, a, b, got, 4, BlockConfig{})
		if !bitEqual(want, got) {
			t.Errorf("%dx%dx%d: zero BlockConfig not bit-identical to Parallel", m, n, k)
		}
	}
}

// TestParallelCfgKernelDegradesToDispatch pins the forged-cache
// contract: an unknown kernel name silently selects the dispatched
// kernel instead of failing.
func TestParallelCfgKernelDegradesToDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m, n, k := 17, 23, 31
	a := randomSlice(rng, m*k)
	b := randomSlice(rng, k*n)
	c0 := randomSlice(rng, m*n)
	want := append([]float32(nil), c0...)
	Packed(m, n, k, a, b, want)
	got := append([]float32(nil), c0...)
	ParallelCfg(m, n, k, a, b, got, 1, BlockConfig{Kernel: "no-such-kernel-9x9"})
	if !bitEqual(want, got) {
		t.Error("unknown kernel name did not degrade to the dispatched kernel")
	}
}

// blockedConfigs exercises KC-only, NC-only and joint blocking at
// depths that straddle the edge shapes.
var blockedConfigs = []BlockConfig{
	{KC: 8},
	{NC: 16},
	{KC: 16, NC: 8},
	{KC: 5, NC: 3},             // deliberately unaligned: NC rounds up to NR
	{KC: 1 << 20, NC: 1 << 20}, // clamps to the full problem
}

// TestBlockedCfgMatchesNaive: every blocked config computes the same
// function as Naive within float32 tolerance on the edge shapes.
func TestBlockedCfgMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, dims := range edgeShapes {
		m, n, k := dims[0], dims[1], dims[2]
		a := randomSlice(rng, m*k)
		b := randomSlice(rng, k*n)
		c0 := randomSlice(rng, m*n)
		want := append([]float32(nil), c0...)
		Naive(m, n, k, a, b, want)
		for _, cfg := range blockedConfigs {
			got := append([]float32(nil), c0...)
			ParallelCfg(m, n, k, a, b, got, 1, cfg)
			if d := maxDiff(want, got); d > 1e-4 {
				t.Errorf("%dx%dx%d cfg=%+v: differs from naive by %g", m, n, k, cfg, d)
			}
		}
	}
}

// TestBlockedCfgWorkerInvariance pins the measurement contract the
// tuner relies on: a blocked config is bit-identical to itself at any
// worker count (blocks are sequential barriers, strips exclusive).
func TestBlockedCfgWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, dims := range [][3]int{{65, 130, 70}, {200, 17, 129}, {64, 64, 64}} {
		m, n, k := dims[0], dims[1], dims[2]
		a := randomSlice(rng, m*k)
		b := randomSlice(rng, k*n)
		c0 := randomSlice(rng, m*n)
		for _, cfg := range blockedConfigs {
			want := append([]float32(nil), c0...)
			ParallelCfg(m, n, k, a, b, want, 1, cfg)
			for _, w := range []int{2, 3, 8} {
				got := append([]float32(nil), c0...)
				ParallelCfg(m, n, k, a, b, got, w, cfg)
				if !bitEqual(want, got) {
					t.Errorf("%dx%dx%d cfg=%+v workers=%d: not bit-identical to sequential", m, n, k, cfg, w)
				}
			}
		}
	}
}

// TestBlockedCfgMatchesNaiveProperty is the quick-check sweep over
// random shapes, configs and worker counts.
func TestBlockedCfgMatchesNaiveProperty(t *testing.T) {
	f := func(mm, nn, kk, kc, nc, workers uint8, seed int64) bool {
		m, n, k := int(mm%40)+1, int(nn%40)+1, int(kk%40)+1
		cfg := BlockConfig{KC: int(kc%24) + 1, NC: int(nc%24) + 1}
		w := int(workers%9) + 1
		rng := rand.New(rand.NewSource(seed))
		a := randomSlice(rng, m*k)
		b := randomSlice(rng, k*n)
		c0 := randomSlice(rng, m*n)
		cn := append([]float32(nil), c0...)
		cs := append([]float32(nil), c0...)
		cw := append([]float32(nil), c0...)
		Naive(m, n, k, a, b, cn)
		ParallelCfg(m, n, k, a, b, cs, 1, cfg)
		ParallelCfg(m, n, k, a, b, cw, w, cfg)
		return maxDiff(cn, cs) <= 1e-4 && bitEqual(cs, cw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestKernelShape: registered variants report their geometry; unknown
// names report ok=false.
func TestKernelShape(t *testing.T) {
	for _, name := range KernelVariants() {
		mr, nr, ok := KernelShape(name)
		if !ok || mr <= 0 || nr <= 0 {
			t.Errorf("KernelShape(%q) = %d, %d, %v", name, mr, nr, ok)
		}
	}
	if _, _, ok := KernelShape("no-such-kernel"); ok {
		t.Error("KernelShape accepted an unknown name")
	}
}

// TestEffectiveWorkers is the unit guard for the parallel-crossover
// regression fix: fan-out never exceeds GOMAXPROCS (8 goroutines on a
// 1-CPU host measured slower than the sequential packed path at 512),
// never exceeds one worker per minStripsPerWorker strips, and a
// problem below the flop floor always runs inline.
func TestEffectiveWorkers(t *testing.T) {
	cases := []struct {
		name                            string
		m, n, k, strips, workers, procs int
		want                            int
	}{
		{"clamp to GOMAXPROCS (the 512 regression)", 512, 512, 512, 64, 8, 1, 1},
		{"clamp to GOMAXPROCS partial", 512, 512, 512, 64, 8, 4, 4},
		{"unclamped on a big host", 512, 512, 512, 64, 8, 16, 8},
		{"below flop floor runs inline", 128, 128, 128, 16, 8, 16, 1},
		{"strip floor shrinks thin fan-outs", 512, 512, 512, 4, 8, 16, 2},
		{"strip floor never reaches zero", 512, 512, 512, 1, 8, 16, 1},
		{"workers already sequential", 512, 512, 512, 64, 1, 16, 1},
	}
	for _, c := range cases {
		if got := effectiveWorkers(c.m, c.n, c.k, c.strips, c.workers, c.procs); got != c.want {
			t.Errorf("%s: effectiveWorkers(%d,%d,%d,strips=%d,workers=%d,procs=%d) = %d, want %d",
				c.name, c.m, c.n, c.k, c.strips, c.workers, c.procs, got, c.want)
		}
	}
}

// TestParallelNotSlowerThanPackedGuard is the benchmark guard for the
// crossover satellite: at the 512 cube where BENCH_kernels.json caught
// parallel8 behind packed (5.71 ms vs 5.63 ms), Parallel with 8
// requested workers must now stay within noise of Packed — on an
// over-subscribed host the clamp makes it the identical code path.
// Wall-clock comparisons are noisy, so the bound is generous and the
// test skips under -short.
func TestParallelNotSlowerThanPackedGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison: skipped under -short")
	}
	const size = 512
	rng := rand.New(rand.NewSource(31))
	a := randomSlice(rng, size*size)
	b := randomSlice(rng, size*size)
	c := make([]float32, size*size)
	packed := testing.Benchmark(func(b2 *testing.B) {
		for i := 0; i < b2.N; i++ {
			Packed(size, size, size, a, b, c)
		}
	})
	parallel := testing.Benchmark(func(b2 *testing.B) {
		for i := 0; i < b2.N; i++ {
			Parallel(size, size, size, a, b, c, 8)
		}
	})
	pk, pl := packed.NsPerOp(), parallel.NsPerOp()
	t.Logf("GOMAXPROCS=%d packed=%dns parallel8=%dns", runtime.GOMAXPROCS(0), pk, pl)
	if float64(pl) > 1.25*float64(pk) {
		t.Errorf("parallel8/%d = %dns/op is more than 25%% slower than packed = %dns/op", size, pl, pk)
	}
}
