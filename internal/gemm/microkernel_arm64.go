//go:build arm64

package gemm

// microKernelNEON is implemented in microkernel_arm64.s. It computes
// an 8x8 tile with NEON vector mul+add pairs (no FMLA — the
// bit-equality contract forbids the skipped intermediate rounding),
// bit-identical to microTileGo8x8.
//
//go:noescape
func microKernelNEON(k int, ap, bp, t *float32)

// microTileNEON adapts the NEON asm kernel to the dispatch signature.
func microTileNEON(k int, ap, bp, t []float32) {
	t = t[:64]
	if k <= 0 {
		for i := range t {
			t[i] = 0
		}
		return
	}
	_ = ap[k*8-1]
	_ = bp[k*8-1]
	microKernelNEON(k, &ap[0], &bp[0], &t[0])
}

// registerArchKernels registers the arm64 kernel. Advanced SIMD is
// architecturally mandatory on ARMv8-A application profiles, so the
// NEON kernel needs no feature probe; QSDNN_DISABLE_SIMD still forces
// the pure-Go fallback.
func registerArchKernels() {
	registerKernel(&Kernel{Name: "neon-8x8", MR: 8, NR: 8, micro: microTileNEON})
}
