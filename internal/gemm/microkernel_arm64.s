//go:build arm64

#include "textflag.h"

// func microKernelNEON(k int, ap, bp, t *float32)
//
// NEON 8x8 micro-kernel. Sixteen 128-bit accumulators hold the 8x8
// tile (row ii: V(8+2ii) = cols 0-3, V(9+2ii) = cols 4-7). Per k
// step: load the mr=8 A values (V0, V1) and the nr=8 B values
// (V2, V3) once, broadcast each A lane, and do one vector FMUL + one
// vector FADD per half-row. Each output element sees exactly one
// IEEE-754 single multiply and one separate add per step, in
// ascending p order — the same operation sequence as microTileGo8x8,
// so the results are bit-identical. Deliberately no FMLA: the fused
// op skips the intermediate rounding and would break the
// cross-kernel bit-equality contract (kernel.go).
//
// The Go arm64 assembler has no mnemonic for the *unfused* vector
// FMUL/FADD (only VFMLA), so those two instructions are WORD-encoded:
//
//	FMUL Vd.4S, Vn.4S, Vm.4S = 0x6E20DC00 | m<<16 | n<<5 | d
//	FADD Vd.4S, Vn.4S, Vm.4S = 0x4E20D400 | m<<16 | n<<5 | d
//
// Every WORD below carries its disassembly; `go tool objdump` on an
// arm64 build round-trips them (see TestNEONEncodings notes in
// dispatch_test.go).
//
// ASIMD is baseline on ARMv8-A, so no feature detection is needed.
TEXT ·microKernelNEON(SB), NOSPLIT, $0-32
	MOVD k+0(FP), R0
	MOVD ap+8(FP), R1
	MOVD bp+16(FP), R2
	MOVD t+24(FP), R3

	VEOR V8.B16, V8.B16, V8.B16
	VEOR V9.B16, V9.B16, V9.B16
	VEOR V10.B16, V10.B16, V10.B16
	VEOR V11.B16, V11.B16, V11.B16
	VEOR V12.B16, V12.B16, V12.B16
	VEOR V13.B16, V13.B16, V13.B16
	VEOR V14.B16, V14.B16, V14.B16
	VEOR V15.B16, V15.B16, V15.B16
	VEOR V16.B16, V16.B16, V16.B16
	VEOR V17.B16, V17.B16, V17.B16
	VEOR V18.B16, V18.B16, V18.B16
	VEOR V19.B16, V19.B16, V19.B16
	VEOR V20.B16, V20.B16, V20.B16
	VEOR V21.B16, V21.B16, V21.B16
	VEOR V22.B16, V22.B16, V22.B16
	VEOR V23.B16, V23.B16, V23.B16

	CBZ R0, neonstore

neonloop:
	VLD1.P 32(R1), [V0.S4, V1.S4] // a[0:8]
	VLD1.P 32(R2), [V2.S4, V3.S4] // b[0:8]

	// row 0: broadcast a0
	VDUP V0.S[0], V4.S4
	WORD $0x6E22DC85 // FMUL V5.4S, V4.4S, V2.4S
	WORD $0x4E25D508 // FADD V8.4S, V8.4S, V5.4S
	WORD $0x6E23DC86 // FMUL V6.4S, V4.4S, V3.4S
	WORD $0x4E26D529 // FADD V9.4S, V9.4S, V6.4S

	// row 1: a1
	VDUP V0.S[1], V4.S4
	WORD $0x6E22DC85 // FMUL V5.4S, V4.4S, V2.4S
	WORD $0x4E25D54A // FADD V10.4S, V10.4S, V5.4S
	WORD $0x6E23DC86 // FMUL V6.4S, V4.4S, V3.4S
	WORD $0x4E26D56B // FADD V11.4S, V11.4S, V6.4S

	// row 2: a2
	VDUP V0.S[2], V4.S4
	WORD $0x6E22DC85 // FMUL V5.4S, V4.4S, V2.4S
	WORD $0x4E25D58C // FADD V12.4S, V12.4S, V5.4S
	WORD $0x6E23DC86 // FMUL V6.4S, V4.4S, V3.4S
	WORD $0x4E26D5AD // FADD V13.4S, V13.4S, V6.4S

	// row 3: a3
	VDUP V0.S[3], V4.S4
	WORD $0x6E22DC85 // FMUL V5.4S, V4.4S, V2.4S
	WORD $0x4E25D5CE // FADD V14.4S, V14.4S, V5.4S
	WORD $0x6E23DC86 // FMUL V6.4S, V4.4S, V3.4S
	WORD $0x4E26D5EF // FADD V15.4S, V15.4S, V6.4S

	// row 4: a4
	VDUP V1.S[0], V4.S4
	WORD $0x6E22DC85 // FMUL V5.4S, V4.4S, V2.4S
	WORD $0x4E25D610 // FADD V16.4S, V16.4S, V5.4S
	WORD $0x6E23DC86 // FMUL V6.4S, V4.4S, V3.4S
	WORD $0x4E26D631 // FADD V17.4S, V17.4S, V6.4S

	// row 5: a5
	VDUP V1.S[1], V4.S4
	WORD $0x6E22DC85 // FMUL V5.4S, V4.4S, V2.4S
	WORD $0x4E25D652 // FADD V18.4S, V18.4S, V5.4S
	WORD $0x6E23DC86 // FMUL V6.4S, V4.4S, V3.4S
	WORD $0x4E26D673 // FADD V19.4S, V19.4S, V6.4S

	// row 6: a6
	VDUP V1.S[2], V4.S4
	WORD $0x6E22DC85 // FMUL V5.4S, V4.4S, V2.4S
	WORD $0x4E25D694 // FADD V20.4S, V20.4S, V5.4S
	WORD $0x6E23DC86 // FMUL V6.4S, V4.4S, V3.4S
	WORD $0x4E26D6B5 // FADD V21.4S, V21.4S, V6.4S

	// row 7: a7
	VDUP V1.S[3], V4.S4
	WORD $0x6E22DC85 // FMUL V5.4S, V4.4S, V2.4S
	WORD $0x4E25D6D6 // FADD V22.4S, V22.4S, V5.4S
	WORD $0x6E23DC86 // FMUL V6.4S, V4.4S, V3.4S
	WORD $0x4E26D6F7 // FADD V23.4S, V23.4S, V6.4S

	SUBS $1, R0, R0
	BNE  neonloop

neonstore:
	VST1.P [V8.S4, V9.S4, V10.S4, V11.S4], 64(R3)
	VST1.P [V12.S4, V13.S4, V14.S4, V15.S4], 64(R3)
	VST1.P [V16.S4, V17.S4, V18.S4, V19.S4], 64(R3)
	VST1 [V20.S4, V21.S4, V22.S4, V23.S4], (R3)
	RET
