//go:build amd64

package gemm

// Hand-rolled CPU feature probe (the module is dependency-free, so no
// golang.org/x/sys/cpu). AVX2 use requires all three of:
//
//  1. CPUID.(EAX=1):ECX.OSXSAVE[27] — XGETBV is available and the OS
//     has enabled XSAVE;
//  2. XGETBV(XCR0) bits 1 and 2 — the OS preserves XMM and YMM state
//     across context switches;
//  3. CPUID.(EAX=7,ECX=0):EBX.AVX2[5] — the core executes AVX2.
//
// Checking only (3) is a classic real-world crash: a hypervisor or OS
// that does not save YMM state leaves the bit set while VEX
// instructions fault or corrupt registers.

// cpuidex executes CPUID with the given leaf and subleaf.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register XCR0.
func xgetbv0() (eax, edx uint32)

const (
	cpuidOSXSAVEBit = 1 << 27 // leaf 1 ECX
	cpuidAVX2Bit    = 1 << 5  // leaf 7 subleaf 0 EBX
	xcr0XMMBit      = 1 << 1
	xcr0YMMBit      = 1 << 2
)

// hasAVX2 reports whether both the CPU and the OS support executing
// the AVX2 micro-kernel.
func hasAVX2() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	if ecx1&cpuidOSXSAVEBit == 0 {
		return false
	}
	xlo, _ := xgetbv0()
	if xlo&(xcr0XMMBit|xcr0YMMBit) != xcr0XMMBit|xcr0YMMBit {
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	return ebx7&cpuidAVX2Bit != 0
}
