package gemm

// The register micro-kernels compute one MR x NR output tile from a
// packed A strip (p-major, MR values per step) and a packed B panel
// (p-major, NR values per step): t[ii*NR+jj] accumulates
// sum_p ap[p*MR+ii] * bp[p*NR+jj] with each element reduced in
// strictly ascending p order, one multiply and one separate add per
// step — the bit-equality contract stated on Kernel.
//
// Per architecture, hand-written implementations register themselves
// behind the dispatch layer (see kernel.go): SSE and AVX2 versions on
// amd64 (microkernel_amd64.s), a NEON version on arm64
// (microkernel_arm64.s). Packed lane-wise MULPS/ADDPS — and their
// VEX/NEON counterparts — perform the same IEEE-754 single-precision
// operations per lane as Go's scalar float32 multiply and add, and
// every version executes the identical per-element operation sequence,
// so their outputs are bit-identical to the pure-Go kernels
// (TestMicroKernelVariantsMatchGeneric pins this tile-for-tile,
// TestDispatchVariantsBitEqual end to end).

// microTileGo is the portable 4x8 micro-kernel: the pure-Go fallback
// dispatch uses (QSDNN_DISABLE_SIMD, non-SIMD builds) and the
// reference the SSE kernel is tested against. ap must hold k*4
// elements, bp k*8, laid out as packStripA / packB produce them; t
// receives the 32-element tile.
func microTileGo(k int, ap, bp, t []float32) {
	var c00, c01, c02, c03, c04, c05, c06, c07 float32
	var c10, c11, c12, c13, c14, c15, c16, c17 float32
	var c20, c21, c22, c23, c24, c25, c26, c27 float32
	var c30, c31, c32, c33, c34, c35, c36, c37 float32
	for p := 0; p < k; p++ {
		a := ap[p*4 : p*4+4 : p*4+4]
		b := bp[p*8 : p*8+8 : p*8+8]
		a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
		b0, b1, b2, b3, b4, b5, b6, b7 := b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c04 += a0 * b4
		c05 += a0 * b5
		c06 += a0 * b6
		c07 += a0 * b7
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c14 += a1 * b4
		c15 += a1 * b5
		c16 += a1 * b6
		c17 += a1 * b7
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c24 += a2 * b4
		c25 += a2 * b5
		c26 += a2 * b6
		c27 += a2 * b7
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
		c34 += a3 * b4
		c35 += a3 * b5
		c36 += a3 * b6
		c37 += a3 * b7
	}
	t = t[:32:32]
	t[0], t[1], t[2], t[3], t[4], t[5], t[6], t[7] = c00, c01, c02, c03, c04, c05, c06, c07
	t[8], t[9], t[10], t[11], t[12], t[13], t[14], t[15] = c10, c11, c12, c13, c14, c15, c16, c17
	t[16], t[17], t[18], t[19], t[20], t[21], t[22], t[23] = c20, c21, c22, c23, c24, c25, c26, c27
	t[24], t[25], t[26], t[27], t[28], t[29], t[30], t[31] = c30, c31, c32, c33, c34, c35, c36, c37
}
