// Package sched analyzes deployment plans for streaming workloads.
// The paper optimizes single-image latency (batch 1, the edge-
// inference setting); this package answers the follow-on deployment
// question: what throughput does the chosen mapping sustain when
// images stream in and the CPU, the GPU and the interconnect can each
// work on a *different* image concurrently (double buffering)? The
// steady-state rate is set by the busiest resource, and a discrete
// simulation gives exact makespans for finite batches.
package sched

import (
	"fmt"

	"repro/internal/plan"
)

// resourceOf maps a plan step to the hardware resource it occupies.
func resourceOf(s plan.Step) string {
	switch s.Kind {
	case plan.Compat:
		if s.Transfer {
			return "interconnect"
		}
		return s.Proc
	case plan.Return:
		if s.Transfer {
			return "interconnect"
		}
		return "CPU"
	default:
		return s.Proc
	}
}

// Analysis summarizes a plan's streaming behavior.
type Analysis struct {
	// LatencySeconds is the single-image end-to-end latency (the sum
	// of all steps — what the paper's search minimizes).
	LatencySeconds float64
	// PerResourceSeconds is each resource's busy time per image.
	PerResourceSeconds map[string]float64
	// Bottleneck is the busiest resource.
	Bottleneck string
	// ThroughputUpperBound is the best possible pipelined rate,
	// 1 / busy(bottleneck). A mapping that ping-pongs between
	// processors (re-entrant flow) generally cannot reach it — use
	// Makespan to get the rate a FIFO pipeline actually achieves.
	ThroughputUpperBound float64
	// MaxPipelineSpeedup is ThroughputUpperBound x latency: 1.0 means
	// no overlap is possible (everything on one resource).
	MaxPipelineSpeedup float64
}

// Analyze computes the steady-state analysis of a plan.
func Analyze(p *plan.Plan) *Analysis {
	a := &Analysis{PerResourceSeconds: map[string]float64{}}
	for _, s := range p.Steps {
		a.LatencySeconds += s.Seconds
		a.PerResourceSeconds[resourceOf(s)] += s.Seconds
	}
	for res, busy := range a.PerResourceSeconds {
		if busy > a.PerResourceSeconds[a.Bottleneck] || a.Bottleneck == "" {
			a.Bottleneck = res
		}
	}
	if busy := a.PerResourceSeconds[a.Bottleneck]; busy > 0 {
		a.ThroughputUpperBound = 1 / busy
		a.MaxPipelineSpeedup = a.LatencySeconds / busy
	}
	return a
}

// AchievedThroughput simulates a FIFO pipeline over n images and
// returns the sustained rate (images/second).
func AchievedThroughput(p *plan.Plan, n int) (float64, error) {
	ms, err := Makespan(p, n)
	if err != nil {
		return 0, err
	}
	return float64(n) / ms, nil
}

// Makespan simulates processing `images` inputs through the plan with
// per-resource pipelining: each image executes its steps in order,
// and each resource serves images FIFO. Returns the total time until
// the last image completes.
func Makespan(p *plan.Plan, images int) (float64, error) {
	if images <= 0 {
		return 0, fmt.Errorf("sched: images must be positive, got %d", images)
	}
	resourceFree := map[string]float64{}
	prevDone := 0.0 // finish time of the current image's previous step
	var last float64
	for img := 0; img < images; img++ {
		prevDone = 0
		for _, s := range p.Steps {
			res := resourceOf(s)
			start := prevDone
			if resourceFree[res] > start {
				start = resourceFree[res]
			}
			done := start + s.Seconds
			resourceFree[res] = done
			prevDone = done
		}
		last = prevDone
	}
	return last, nil
}

// Render formats the analysis for terminal output.
func (a *Analysis) Render() string {
	out := fmt.Sprintf("latency %.3f ms, pipelined rate <= %.1f img/s (max speedup %.2fx)\n",
		a.LatencySeconds*1e3, a.ThroughputUpperBound, a.MaxPipelineSpeedup)
	for res, busy := range a.PerResourceSeconds {
		mark := ""
		if res == a.Bottleneck {
			mark = "  <- bottleneck"
		}
		out += fmt.Sprintf("  %-13s busy %8.3f ms/image%s\n", res, busy*1e3, mark)
	}
	return out
}
