package sched

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/plan"
	"repro/internal/platform"
	"repro/internal/primitives"
	"repro/internal/profile"
)

func mobilenetPlan(t *testing.T) *plan.Plan {
	t.Helper()
	net := models.MustBuild("mobilenet-v1")
	pl := platform.JetsonTX2Like()
	tab, err := profile.Run(net, profile.NewSimSource(net, pl),
		profile.Options{Mode: primitives.ModeGPGPU, Samples: 3})
	if err != nil {
		t.Fatal(err)
	}
	res := core.Search(tab, core.Config{Episodes: 600, Seed: 1})
	p, err := plan.Build(net, tab, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAnalyzeConsistency(t *testing.T) {
	p := mobilenetPlan(t)
	a := Analyze(p)
	if math.Abs(a.LatencySeconds-p.TotalSeconds) > 1e-12 {
		t.Errorf("latency %v != plan total %v", a.LatencySeconds, p.TotalSeconds)
	}
	// Busy times sum to the latency (every step occupies exactly one
	// resource).
	var sum float64
	for _, b := range a.PerResourceSeconds {
		sum += b
	}
	if math.Abs(sum-a.LatencySeconds) > 1e-12 {
		t.Errorf("resource busy sum %v != latency %v", sum, a.LatencySeconds)
	}
	// The searched MobileNet mapping uses CPU, GPU and interconnect.
	for _, res := range []string{"CPU", "GPU", "interconnect"} {
		if a.PerResourceSeconds[res] <= 0 {
			t.Errorf("resource %s unused — expected a heterogeneous mapping", res)
		}
	}
	if a.MaxPipelineSpeedup < 1 {
		t.Errorf("max pipeline speedup %v < 1", a.MaxPipelineSpeedup)
	}
	if a.ThroughputUpperBound <= 1/a.LatencySeconds-1e-9 {
		t.Error("pipelined upper bound should be at least the sequential rate")
	}
}

func TestMakespanBounds(t *testing.T) {
	p := mobilenetPlan(t)
	a := Analyze(p)
	one, err := Makespan(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(one-a.LatencySeconds) > 1e-9 {
		t.Errorf("makespan(1) = %v, want latency %v", one, a.LatencySeconds)
	}
	n := 20
	many, err := Makespan(p, n)
	if err != nil {
		t.Fatal(err)
	}
	// Bounds: pipelined is no worse than sequential and no better
	// than the bottleneck rate.
	if many > float64(n)*a.LatencySeconds+1e-9 {
		t.Errorf("makespan(%d) = %v exceeds sequential %v", n, many, float64(n)*a.LatencySeconds)
	}
	lower := float64(n) * a.PerResourceSeconds[a.Bottleneck]
	if many < lower-1e-9 {
		t.Errorf("makespan(%d) = %v beats the bottleneck bound %v", n, many, lower)
	}
	// Monotone in n.
	fewer, err := Makespan(p, n-1)
	if err != nil {
		t.Fatal(err)
	}
	if fewer > many {
		t.Error("makespan should be monotone in the batch size")
	}
}

func TestAchievedRateWithinBounds(t *testing.T) {
	// A re-entrant mapping (CPU<->GPU ping-pong) cannot reach the
	// bottleneck bound with a FIFO pipeline, but must stay between the
	// sequential rate and the bound.
	p := mobilenetPlan(t)
	a := Analyze(p)
	n := 200
	rate, err := AchievedThroughput(p, n)
	if err != nil {
		t.Fatal(err)
	}
	if rate > a.ThroughputUpperBound+1e-9 {
		t.Errorf("simulated rate %v exceeds the bound %v", rate, a.ThroughputUpperBound)
	}
	seq := 1 / a.LatencySeconds
	if rate < seq*(1-1e-9)*float64(n)/(float64(n)+1) {
		t.Errorf("simulated rate %v below the sequential rate %v", rate, seq)
	}
}

func TestMakespanValidation(t *testing.T) {
	p := mobilenetPlan(t)
	if _, err := Makespan(p, 0); err == nil {
		t.Error("zero images should error")
	}
}

func TestRender(t *testing.T) {
	a := Analyze(mobilenetPlan(t))
	out := a.Render()
	for _, want := range []string{"latency", "img/s", "bottleneck"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
