package qsdnn

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestOptimizeBatchContextWithFaults: the public acceptance path — a
// seeded fault schedule through the batch API completes with valid
// reports, the degradation surfaces in JobStats, and the summary is
// deterministic for the fixed seed.
func TestOptimizeBatchContextWithFaults(t *testing.T) {
	faults := DefaultFaultInjection(42)
	robust := DefaultRobustPolicy()
	robust.SampleTimeout = 250 * time.Millisecond
	opts := BatchOptions{
		Options: Options{Episodes: 150, Samples: 3},
		Workers: 4, BestOf: 2,
		Robust: robust, Faults: &faults,
	}
	jobs := []BatchJob{
		{Network: "lenet5", Mode: ModeCPU},
		{Network: "lenet5", Mode: ModeGPGPU},
	}
	run := func() *BatchReport {
		b, err := OptimizeBatchContext(context.Background(), jobs, opts)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if a.Canceled {
		t.Error("Canceled set on a completed batch")
	}
	for i := range a.Reports {
		if a.Reports[i] == nil || a.Stats[i].Err != nil {
			t.Fatalf("job %d failed under faults: %v", i, a.Stats[i].Err)
		}
		if a.Reports[i].Seconds != b.Reports[i].Seconds {
			t.Errorf("job %d: fault-injected result not deterministic", i)
		}
	}
	if a.Summary() != b.Summary() {
		t.Errorf("fault-injected summaries differ:\n%s\nvs\n%s", a.Summary(), b.Summary())
	}
}

// TestOptimizeBatchContextCancellation: a canceled context returns the
// batch with Canceled set, errors recorded per job, and a summary that
// still renders (FAILED lines instead of a panic on nil reports).
func TestOptimizeBatchContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	batch, err := OptimizeBatchContext(ctx, []BatchJob{{Network: "lenet5"}}, BatchOptions{
		Options: Options{Episodes: 50, Samples: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !batch.Canceled {
		t.Error("Canceled not set")
	}
	if batch.Stats[0].Err == nil {
		t.Error("canceled job has no error")
	}
	if s := batch.Summary(); !strings.Contains(s, "FAILED") || !strings.Contains(s, "interrupted") {
		t.Errorf("canceled summary missing markers:\n%s", s)
	}
	// The legacy surface refuses a canceled batch outright.
	if _, err := OptimizeBatch(nil, BatchOptions{}); err == nil {
		t.Error("empty batch should still error")
	}
}
