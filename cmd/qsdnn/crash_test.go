package main

import (
	"context"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/store"
)

// The chaos workload: two networks, both modes, best-of-2 seeds —
// eight durable units, big enough that a kill lands mid-run.
const (
	chaosNets     = "lenet5,mobilenet-v1"
	chaosEpisodes = 2000
	chaosSeeds    = 2
)

// deterministicCut returns a bench-all output up to the wall-clock
// section, which is the part guaranteed byte-identical across runs.
func deterministicCut(t *testing.T, out string) string {
	t.Helper()
	i := strings.Index(out, "batch wall-clock")
	if i < 0 {
		t.Fatalf("no timing section in output:\n%s", out)
	}
	return out[:i]
}

// TestCrashResumeHelper is the child half of the chaos test: invoked
// by re-executing the test binary, it runs the chaos bench-all against
// the manifest directory from the environment and atomically writes
// the deterministic summary to the output file. The parent SIGKILLs it
// at random points; only a run that reaches the end writes the file.
func TestCrashResumeHelper(t *testing.T) {
	if os.Getenv("QSDNN_CRASH_HELPER") != "1" {
		t.Skip("run only as a re-exec child of TestCrashResumeBenchAll")
	}
	dir := os.Getenv("QSDNN_MANIFEST_DIR")
	outFile := os.Getenv("QSDNN_OUT")
	out, err := capture(t, func() error {
		return runCtx(context.Background(), "bench-all", chaosNets, "both",
			chaosEpisodes, fastSamples, 1, "", "tx2-like", 2, chaosSeeds,
			faultFlags{}, durableFlags{manifest: dir}, engineFlags{}, serveFlags{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.WriteFileAtomic(outFile, []byte(deterministicCut(t, out)), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCrashResumeBenchAll kills a manifest-backed bench-all with
// SIGKILL at random delays, restarting it on the same directory until
// an attempt survives, then asserts the crashed-and-resumed output is
// byte-identical to an uninterrupted in-process run and the journal
// holds exactly one verified record per unit.
func TestCrashResumeBenchAll(t *testing.T) {
	if testing.Short() {
		t.Skip("kill/restart chaos test skipped with -short")
	}
	dir := t.TempDir()
	outFile := filepath.Join(t.TempDir(), "summary.txt")
	rng := rand.New(rand.NewSource(7))

	const maxAttempts = 6
	completed := false
	for attempt := 0; attempt < maxAttempts && !completed; attempt++ {
		cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashResumeHelper$")
		cmd.Env = append(os.Environ(),
			"QSDNN_CRASH_HELPER=1",
			"QSDNN_MANIFEST_DIR="+dir,
			"QSDNN_OUT="+outFile)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()

		if attempt == maxAttempts-1 {
			// Last chance: let it run to completion.
			if err := <-done; err != nil {
				t.Fatalf("uninterrupted final attempt failed: %v", err)
			}
			completed = true
			break
		}
		delay := time.Duration(50+rng.Intn(350)) * time.Millisecond
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("attempt %d failed on its own: %v", attempt, err)
			}
			completed = true
		case <-time.After(delay):
			if err := cmd.Process.Kill(); err != nil {
				t.Fatalf("kill: %v", err)
			}
			<-done // reap the killed child; its error is expected
			t.Logf("attempt %d killed after %v", attempt, delay)
		}
	}
	if !completed {
		t.Fatal("no attempt completed")
	}

	got, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatalf("surviving attempt left no summary: %v", err)
	}

	// Reference: the same workload uninterrupted, no manifest at all —
	// the durable path must change persistence, never results.
	refOut, err := capture(t, func() error {
		return runCtx(context.Background(), "bench-all", chaosNets, "both",
			chaosEpisodes, fastSamples, 1, "", "tx2-like", 2, chaosSeeds,
			faultFlags{}, durableFlags{}, engineFlags{}, serveFlags{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if ref := deterministicCut(t, refOut); string(got) != ref {
		t.Errorf("crashed-and-resumed summary differs from uninterrupted run:\n--- resumed\n%s\n--- reference\n%s", got, ref)
	}

	// The journal converged to one record per (network, mode, seed)
	// unit: 2 networks x 2 modes x 2 seeds.
	man, err := store.OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer man.Close()
	if want := 8; man.Len() != want {
		t.Errorf("manifest has %d records, want %d", man.Len(), want)
	}
	if man.Lines() < man.Len() {
		t.Errorf("journal has %d lines for %d records", man.Lines(), man.Len())
	}
}
