package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/serve"
)

// The serve chaos workload: one big-budget request whose search spans
// hundreds of checkpoint cadences. The tests place the SIGKILL by
// polling progress past two cadences, so mid-search placement is
// guaranteed regardless of machine speed; the budget only has to be
// large enough that plenty of search remains after the kill, yet
// small enough that the resumed remainder finishes inside the poll
// window even under the race detector's ~10x slowdown.
const (
	serveChaosEvery = 50
	serveChaosBody  = `{"network":"lenet5","mode":"cpu","episodes":20000,"samples":3,"seed":5}`
)

// TestServeCrashHelper is the child half of the serve chaos tests:
// re-executed by the parents, it runs the real daemon command (ephemeral
// port, durable store from the environment) until a signal stops it.
func TestServeCrashHelper(t *testing.T) {
	if os.Getenv("QSDNN_SERVE_HELPER") != "1" {
		t.Skip("run only as a re-exec child of the serve chaos tests")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	sf := serveFlags{
		addr:         "127.0.0.1:0",
		maxInflight:  1,
		queueDepth:   8,
		planStore:    os.Getenv("QSDNN_SERVE_STORE"),
		drainTimeout: 2 * time.Minute,
	}
	df := durableFlags{every: serveChaosEvery}
	if err := runCtx(ctx, "serve", "", "", 0, 0, 0, "", "tx2-like", 0, 0,
		faultFlags{}, df, engineFlags{}, sf); err != nil {
		t.Fatal(err)
	}
}

// serveChild manages one re-exec'd daemon process.
type serveChild struct {
	cmd  *exec.Cmd
	base string // http://host:port
	done chan error
}

// startServeChild re-execs the test binary as a daemon on storeDir and
// parses the listen line off its stdout for the bound ephemeral port.
func startServeChild(t *testing.T, storeDir string) *serveChild {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestServeCrashHelper$")
	cmd.Env = append(os.Environ(),
		"QSDNN_SERVE_HELPER=1",
		"QSDNN_SERVE_STORE="+storeDir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	c := &serveChild{cmd: cmd, done: make(chan error, 1)}
	addr := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "qsdnn serve listening on "); ok {
				addr <- strings.TrimSpace(rest)
			}
		}
	}()
	go func() { c.done <- cmd.Wait() }()
	select {
	case c.base = <-addr:
	case err := <-c.done:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("daemon never printed its listen address")
	}
	return c
}

// httpJSON issues a request against the child and decodes the JSON
// reply.
func httpJSON(t *testing.T, method, url, body string, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(payload, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, payload, err)
		}
	}
	return resp.StatusCode
}

// pollUntil re-queries cond every few milliseconds until it holds.
func pollUntil(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", msg)
}

// TestServeCrashResume is the serve mirror of TestCrashResumeBenchAll:
// SIGKILL the daemon mid-search (after at least two checkpoint
// cadences), mangle the newest checkpoint's tail to simulate a torn
// write, restart on the same -plan-store, and require that the daemon
// reports the resumed job and finishes it to a plan byte-identical to
// an uninterrupted reference run.
func TestServeCrashResume(t *testing.T) {
	if testing.Short() {
		t.Skip("kill/restart chaos test skipped with -short")
	}
	storeDir := t.TempDir()
	c := startServeChild(t, storeDir)

	var acc serve.OptimizeResponse
	if code := httpJSON(t, "POST", c.base+"/v1/optimize", serveChaosBody, &acc); code != http.StatusAccepted {
		t.Fatalf("POST: status %d", code)
	}
	// Let the search cross at least two checkpoint cadences so both
	// rotation generations exist, then SIGKILL mid-flight.
	pollUntil(t, 60*time.Second, func() bool {
		var st serve.OptimizeResponse
		httpJSON(t, "GET", c.base+"/v1/jobs/"+acc.ID, "", &st)
		return st.Progress != nil && st.Progress.Episode >= 2*serveChaosEvery
	}, "two checkpoint cadences")
	if err := c.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-c.done // reap; a SIGKILL death is the expected "failure"

	// The kill can land anywhere, including inside SaveRotating — in
	// which case the record survives only as its .prev rotation and
	// the torn write already happened naturally. When an intact
	// current generation exists, inject the torn write ourselves: flip
	// its tail so resume must fall back to the previous generation.
	currents, err := filepath.Glob(filepath.Join(storeDir, "jobs", "*.qsd"))
	if err != nil {
		t.Fatal(err)
	}
	prevs, err := filepath.Glob(filepath.Join(storeDir, "jobs", "*.qsd.prev"))
	if err != nil {
		t.Fatal(err)
	}
	if len(currents)+len(prevs) == 0 {
		all, _ := filepath.Glob(filepath.Join(storeDir, "*", "*"))
		t.Fatalf("no job record generation survived the kill; store contents: %v", all)
	}
	if len(currents) == 1 && len(prevs) == 1 {
		data, err := os.ReadFile(currents[0])
		if err != nil {
			t.Fatal(err)
		}
		for i := len(data) - 8; i < len(data); i++ {
			data[i] ^= 0xff
		}
		if err := os.WriteFile(currents[0], data[:len(data)-3], 0o644); err != nil {
			t.Fatal(err)
		}
	} else {
		t.Logf("kill tore the rotation itself (currents %v, prevs %v); resuming from what survived", currents, prevs)
	}

	// Restart on the same store: the job must come back and finish.
	c2 := startServeChild(t, storeDir)
	var st struct {
		Resumed   int `json:"resumed"`
		Completed int `json:"completed"`
	}
	httpJSON(t, "GET", c2.base+"/statusz", "", &st)
	if st.Resumed < 1 {
		t.Fatalf("restarted daemon reports %d resumed jobs, want >= 1", st.Resumed)
	}
	var final serve.OptimizeResponse
	pollUntil(t, 120*time.Second, func() bool {
		final = serve.OptimizeResponse{}
		httpJSON(t, "POST", c2.base+"/v1/optimize", serveChaosBody, &final)
		return final.State == serve.StateDone && len(final.Plan) > 0
	}, "resumed job to finish")

	// Byte-identity: the crashed, tail-corrupted, resumed plan equals
	// the uninterrupted in-process reference at the same cadence.
	var req serve.OptimizeRequest
	if err := json.Unmarshal([]byte(serveChaosBody), &req); err != nil {
		t.Fatal(err)
	}
	_, want, err := serve.ReferencePlan(context.Background(), req, serveChaosEvery)
	if err != nil {
		t.Fatal(err)
	}
	if string(final.Plan) != string(want) {
		t.Errorf("resumed plan differs from uninterrupted reference\nresumed:   %s\nreference: %s", final.Plan, want)
	}

	// Graceful shutdown of the second daemon.
	if err := c2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := <-c2.done; err != nil {
		t.Fatalf("daemon did not exit cleanly after SIGTERM: %v", err)
	}
}

// TestServeDrainSIGTERM: a SIGTERM during an in-flight search drains
// gracefully — the daemon exits 0, the job's plan is durably stored,
// and no pending job record is left behind (zero dropped jobs).
func TestServeDrainSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("kill/restart chaos test skipped with -short")
	}
	storeDir := t.TempDir()
	c := startServeChild(t, storeDir)

	var acc serve.OptimizeResponse
	if code := httpJSON(t, "POST", c.base+"/v1/optimize", serveChaosBody, &acc); code != http.StatusAccepted {
		t.Fatalf("POST: status %d", code)
	}
	pollUntil(t, 60*time.Second, func() bool {
		var st serve.OptimizeResponse
		httpJSON(t, "GET", c.base+"/v1/jobs/"+acc.ID, "", &st)
		return st.State == serve.StateRunning
	}, "job to start running")

	if err := c.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := <-c.done; err != nil {
		t.Fatalf("daemon did not exit cleanly after SIGTERM: %v", err)
	}

	// Zero dropped jobs: the in-flight search finished and persisted
	// its plan, and its pending record was retired.
	plans, err := filepath.Glob(filepath.Join(storeDir, "plans", "*.qsd"))
	if err != nil || len(plans) != 1 {
		t.Fatalf("stored plans after drain: %v (err %v), want exactly 1", plans, err)
	}
	recs, err := filepath.Glob(filepath.Join(storeDir, "jobs", "*.qsd"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("pending job records after drain: %v, want none", recs)
	}

	// A fresh daemon on the same store serves the drained job's plan
	// from disk, byte-identical to the reference.
	c2 := startServeChild(t, storeDir)
	var cached serve.OptimizeResponse
	if code := httpJSON(t, "POST", c2.base+"/v1/optimize", serveChaosBody, &cached); code != http.StatusOK {
		t.Fatalf("cached POST: status %d", code)
	}
	if !cached.Cached || len(cached.Plan) == 0 {
		t.Fatalf("expected a cache-served plan, got %+v", cached)
	}
	var req serve.OptimizeRequest
	if err := json.Unmarshal([]byte(serveChaosBody), &req); err != nil {
		t.Fatal(err)
	}
	_, want, err := serve.ReferencePlan(context.Background(), req, serveChaosEvery)
	if err != nil {
		t.Fatal(err)
	}
	if string(cached.Plan) != string(want) {
		t.Errorf("drained plan differs from reference\ndrained:   %s\nreference: %s", cached.Plan, want)
	}
	if err := c2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := <-c2.done; err != nil {
		t.Fatalf("second daemon did not exit cleanly: %v", err)
	}
}
