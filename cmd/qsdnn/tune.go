package main

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"

	"repro/internal/engine"
	"repro/internal/lut"
	"repro/internal/nn"
	"repro/internal/tune"
)

// tunerFlags bundles the kernel-autotuner CLI flags. Like
// batchedReplay, a package variable keeps the many positional runCtx
// test call sites unchanged; main() sets it from the parsed flags.
type tunerFlags struct {
	// autotune runs the variant search when no usable cache exists.
	autotune bool
	// budget is the per-(layer, base) measurement budget.
	budget int
	// cache is the durable tuned-variant cache file ("" = in-memory
	// only).
	cache string
}

var tunerCfg tunerFlags

// enabled reports whether any tuning work is requested.
func (t tunerFlags) enabled() bool { return t.autotune || t.cache != "" }

// applyTuning resolves the tuned-variant cache — loading a usable one
// from -tuner-cache, else (with -autotune) measuring a fresh one on the
// engine source — and feeds it into the table so the searches can
// select tuned kernels. src is nil when profiling ran on the
// simulator: cached tunings still apply, but fresh tuning needs the
// real engine. A corrupt or mismatched cache degrades to defaults (or
// a re-tune), never an error.
func applyTuning(ctx context.Context, ft faultFlags, net *nn.Network, tab *lut.Table, src *engine.Source, seed int64) error {
	tn := tunerCfg
	var cache *tune.Cache
	if tn.cache != "" {
		c, err := tune.LoadCache(tn.cache)
		// A budget change only matters when the caller can re-tune
		// (-autotune); cache-only consumers reuse any matching cache.
		switch {
		case err == nil && c.Network == net.Name && c.Mode == tab.Mode.String() && (!tn.autotune || c.Budget == tn.budget):
			cache = c
		case err == nil:
			fmt.Fprintf(os.Stderr, "qsdnn: tuner cache %s is for %s/%s budget %d; not reusable here\n",
				tn.cache, c.Network, c.Mode, c.Budget)
		case errors.Is(err, fs.ErrNotExist):
			// Fresh cache file: nothing to reuse yet.
		default:
			fmt.Fprintf(os.Stderr, "qsdnn: tuner cache %s unreadable (%v); falling back to defaults\n", tn.cache, err)
		}
	}
	if cache == nil {
		if !tn.autotune {
			return nil // cache-only mode with nothing usable: defaults
		}
		if src == nil {
			return errors.New("-autotune measures real kernels; use -engine -mode cpu")
		}
		opts := tune.DefaultOptions()
		opts.Budget = tn.budget
		opts.Robust = ft.policy()
		opts.Seed = seed
		var err error
		cache, err = tune.Tune(ctx, net, tab, tune.EngineMeasurer{Src: src}, opts)
		if err != nil {
			return err
		}
		if tn.cache != "" {
			if err := cache.Save(tn.cache); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "qsdnn: tuner cache written to %s\n", tn.cache)
		}
	}
	applied, skipped := cache.Apply(tab, net)
	if src != nil {
		eng := src.Engine()
		for _, a := range applied {
			eng.SetTuned(a.Layer, a.Twin, a.Variant.Conv())
		}
	}
	st := cache.Stats
	fmt.Fprintf(os.Stderr, "qsdnn: autotune: %d tuned variant(s) applied, %d skipped; measured %d of %d generated",
		len(applied), skipped, st.Measured, st.Generated)
	if st.BestSpeedup > 0 {
		fmt.Fprintf(os.Stderr, ", best speedup %.2fx", st.BestSpeedup)
	}
	fmt.Fprintln(os.Stderr)
	return nil
}

// tunerVersionInfo prints the autotuner view for `qsdnn version`: the
// tunable knob space on this host and, when -tuner-cache names a
// readable cache, its recorded run statistics.
func tunerVersionInfo() {
	if tunerCfg.cache == "" {
		return
	}
	c, err := tune.LoadCache(tunerCfg.cache)
	if err != nil {
		fmt.Printf("tuner cache: %s (unreadable: %v)\n", tunerCfg.cache, err)
		return
	}
	fmt.Printf("tuner cache: %s\n", tunerCfg.cache)
	fmt.Printf("  network %s mode %s seed %d budget %d\n", c.Network, c.Mode, c.Seed, c.Budget)
	fmt.Printf("  %d tuned variant(s); measured %d of %d generated across %d pair(s), %d shortlist hit(s)\n",
		len(c.Entries), c.Stats.Measured, c.Stats.Generated, c.Stats.PairsTuned, c.Stats.ShortlistHits)
	if c.Stats.BestSpeedup > 0 {
		fmt.Printf("  best speedup %.2fx\n", c.Stats.BestSpeedup)
	}
	for _, e := range c.Entries {
		fmt.Printf("  layer %-3d %-24s -> %s (%.4f ms, default %.4f ms)\n",
			e.Layer, e.Base, e.Variant, e.Seconds*1e3, e.DefaultSec*1e3)
	}
}
