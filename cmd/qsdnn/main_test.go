package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// capture runs f with stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := f()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 0, 1<<16)
	tmp := make([]byte, 4096)
	for {
		n, err := r.Read(tmp)
		buf = append(buf, tmp[:n]...)
		if err != nil {
			break
		}
	}
	return string(buf), runErr
}

// fast settings keep CLI tests quick.
const (
	fastEpisodes = 200
	fastSamples  = 3
)

func TestModelsCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run("models", "", "gpgpu", fastEpisodes, fastSamples, 1, "", "tx2-like", 1, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"lenet5", "vgg19", "mobilenet-v1", "params"} {
		if !strings.Contains(out, want) {
			t.Errorf("models output missing %q", want)
		}
	}
}

func TestPlatformsCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run("platforms", "", "gpgpu", fastEpisodes, fastSamples, 1, "", "tx2-like", 1, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tx2-like", "xavier-like", "GFLOPs"} {
		if !strings.Contains(out, want) {
			t.Errorf("platforms output missing %q", want)
		}
	}
}

func TestSpaceCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run("space", "lenet5", "gpgpu", fastEpisodes, fastSamples, 1, "", "tx2-like", 1, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "design space") || !strings.Contains(out, "GPGPU") {
		t.Errorf("space output: %s", out)
	}
}

func TestProfileThenSearchWithLUTFile(t *testing.T) {
	lutFile := filepath.Join(t.TempDir(), "lenet.lut.json")
	if _, err := capture(t, func() error {
		return run("profile", "lenet5", "cpu", fastEpisodes, fastSamples, 1, lutFile, "tx2-like", 1, 1)
	}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(lutFile); err != nil || fi.Size() == 0 {
		t.Fatalf("LUT file not written: %v", err)
	}
	out, err := capture(t, func() error {
		return run("search", "lenet5", "cpu", fastEpisodes, fastSamples, 1, lutFile, "tx2-like", 1, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Vanilla baseline", "QS-DNN", "per-layer selection", "library mix"} {
		if !strings.Contains(out, want) {
			t.Errorf("search output missing %q", want)
		}
	}
}

func TestSearchWithoutLUT(t *testing.T) {
	out, err := capture(t, func() error {
		return run("search", "lenet5", "gpgpu", fastEpisodes, fastSamples, 1, "", "nano-like", 1, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "speedup vs Vanilla") {
		t.Errorf("search output: %s", out)
	}
}

func TestPlanCommand(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.json")
	out, err := capture(t, func() error {
		return run("plan", "lenet5", "gpgpu", fastEpisodes, fastSamples, 1, trace, "tx2-like", 1, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"deployment plan", "transfers", "chrome trace"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan output missing %q", want)
		}
	}
	if fi, err := os.Stat(trace); err != nil || fi.Size() == 0 {
		t.Error("trace file not written")
	}
}

func TestPBQPCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run("pbqp", "lenet5", "gpgpu", fastEpisodes, fastSamples, 1, "", "tx2-like", 1, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "PBQP") || !strings.Contains(out, "QS-DNN") {
		t.Errorf("pbqp output: %s", out)
	}
}

func TestParetoCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run("pareto", "lenet5", "gpgpu", fastEpisodes, fastSamples, 1, "", "tx2-like", 1, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Pareto front") || !strings.Contains(out, "mJ") {
		t.Errorf("pareto output: %s", out)
	}
}

func TestAnalyzeCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run("analyze", "lenet5", "cpu", fastEpisodes, fastSamples, 1, "", "tx2-like", 1, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"optimized", "top", "latency"} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze output missing %q", want)
		}
	}
}

func TestBenchAllCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run("bench-all", "lenet5,mobilenet-v1", "both", fastEpisodes, fastSamples, 1, "", "tx2-like", 4, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"lenet5", "mobilenet-v1", "CPU", "GPGPU", "qsdnn(ms)", "profile cache"} {
		if !strings.Contains(out, want) {
			t.Errorf("bench-all output missing %q:\n%s", want, out)
		}
	}
	// 2 networks x 2 modes x 2 seeds = 8 units over 4 distinct tables.
	if !strings.Contains(out, "profile cache: 4 runs, 4 shared") {
		t.Errorf("bench-all cache accounting wrong:\n%s", out)
	}
}

func TestBenchAllSingleMode(t *testing.T) {
	out, err := capture(t, func() error {
		return run("bench-all", "lenet5", "cpu", fastEpisodes, fastSamples, 1, "", "tx2-like", 1, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "GPGPU") {
		t.Errorf("cpu-only bench-all mentions GPGPU:\n%s", out)
	}
}

func TestBenchAllErrors(t *testing.T) {
	if _, err := capture(t, func() error {
		return run("bench-all", "nope", "cpu", 10, 2, 1, "", "tx2-like", 1, 1)
	}); err == nil {
		t.Error("bench-all with unknown network should error")
	}
	if _, err := capture(t, func() error {
		return run("bench-all", "lenet5", "turbo", 10, 2, 1, "", "tx2-like", 1, 1)
	}); err == nil {
		t.Error("bench-all with unknown mode should error")
	}
}

func TestErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		f    func() error
	}{
		{"unknown command", func() error {
			return run("wat", "lenet5", "cpu", 10, 2, 1, "", "tx2-like", 1, 1)
		}},
		{"unknown model", func() error {
			return run("search", "nope", "cpu", 10, 2, 1, "", "tx2-like", 1, 1)
		}},
		{"unknown mode", func() error {
			return run("search", "lenet5", "turbo", 10, 2, 1, "", "tx2-like", 1, 1)
		}},
		{"unknown platform", func() error {
			return run("search", "lenet5", "cpu", 10, 2, 1, "", "warpdrive", 1, 1)
		}},
		{"missing lut file", func() error {
			return run("search", "lenet5", "cpu", 10, 2, 1, "/nonexistent/x.json", "tx2-like", 1, 1)
		}},
	}
	for _, tc := range cases {
		if _, err := capture(t, tc.f); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

// TestBenchAllWithFaultInjection: the acceptance scenario — a seeded
// fault schedule through bench-all completes (transient faults retried
// away, persistent failures degraded), and the summary is
// deterministic for a fixed seed.
func TestBenchAllWithFaultInjection(t *testing.T) {
	ft := faultFlags{faultSeed: 42, retries: 3, sampleTimeout: 250 * time.Millisecond}
	bench := func() string {
		out, err := capture(t, func() error {
			return runCtx(context.Background(), "bench-all", "lenet5", "both",
				fastEpisodes, fastSamples, 1, "", "tx2-like", 4, 2, ft, durableFlags{}, engineFlags{}, serveFlags{})
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := bench(), bench()
	// The summary block (everything before TimingSummary's wall-clock
	// lines) must be byte-identical across runs.
	cut := func(s string) string { return strings.SplitN(s, "batch wall-clock", 2)[0] }
	if cut(a) != cut(b) {
		t.Errorf("fault-injected bench-all not deterministic:\n%s\nvs\n%s", cut(a), cut(b))
	}
	if !strings.Contains(a, "qsdnn(ms)") || strings.Contains(a, "FAILED") {
		t.Errorf("bench-all under faults did not complete cleanly:\n%s", a)
	}
}

// TestSearchWithRobustProfiling: -robust plus fault injection on the
// single-network pipeline still produces a full report, and the CLI
// prints the profiling report when the machinery fired.
func TestSearchWithRobustProfiling(t *testing.T) {
	ft := faultFlags{robust: true, faultSeed: 7, sampleTimeout: 250 * time.Millisecond}
	out, err := capture(t, func() error {
		return runCtx(context.Background(), "search", "lenet5", "cpu",
			fastEpisodes, fastSamples, 1, "", "tx2-like", 1, 1, ft, durableFlags{}, engineFlags{}, serveFlags{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "QS-DNN") {
		t.Errorf("search output missing report:\n%s", out)
	}
	if !strings.Contains(out, "retries") {
		t.Errorf("fault-injected search printed no profiling report:\n%s", out)
	}
}

// TestBenchAllInterrupted: a canceled context makes bench-all return
// an "interrupted" error after flushing whatever summary exists —
// the SIGINT path without the signal plumbing.
func TestBenchAllInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := capture(t, func() error {
		return runCtx(ctx, "bench-all", "lenet5", "cpu",
			fastEpisodes, fastSamples, 1, "", "tx2-like", 1, 1, faultFlags{}, durableFlags{}, engineFlags{}, serveFlags{})
	})
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("err = %v, want interrupted", err)
	}
	if !strings.Contains(out, "batch interrupted") {
		t.Errorf("interrupted bench-all printed no partial-results marker:\n%s", out)
	}
}

func TestExportCommand(t *testing.T) {
	out := filepath.Join(t.TempDir(), "lenet.json")
	msg, err := capture(t, func() error {
		return run("export", "lenet5", "cpu", fastEpisodes, fastSamples, 1, out, "tx2-like", 1, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, "Graphviz") {
		t.Errorf("export output: %s", msg)
	}
	arch, err := os.ReadFile(out)
	if err != nil || !strings.Contains(string(arch), `"kind": "Conv"`) {
		t.Errorf("architecture JSON bad: %v", err)
	}
	dot, err := os.ReadFile(strings.TrimSuffix(out, ".json") + ".dot")
	if err != nil || !strings.Contains(string(dot), "digraph") {
		t.Errorf("dot file bad: %v", err)
	}
	// The DOT annotations carry the searched primitives.
	if !strings.Contains(string(dot), "sparse-") && !strings.Contains(string(dot), "nnpack-") &&
		!strings.Contains(string(dot), "openblas-") {
		t.Error("dot missing primitive annotations")
	}
}
