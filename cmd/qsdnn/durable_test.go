package main

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/store"
)

// declareFlags mirrors main's flag declarations so validateFlags can
// be exercised against parsed command lines.
func declareFlags(fs *flag.FlagSet) {
	fs.Int("episodes", 1000, "")
	fs.Int("samples", 50, "")
	fs.Int("seeds", 1, "")
	fs.Int("retries", -1, "")
	fs.Duration("sample-timeout", 0, "")
	fs.Int("checkpoint-every", core.DefaultSnapshotEvery, "")
}

func TestValidateFlagsRejectsBadValues(t *testing.T) {
	bad := [][]string{
		{"-retries", "-3"},
		{"-sample-timeout", "-1s"},
		{"-sample-timeout", "0s"},
		{"-seeds", "-1"},
		{"-episodes", "0"},
		{"-episodes", "-5"},
		{"-samples", "0"},
		{"-checkpoint-every", "0"},
		{"-checkpoint-every", "-10"},
	}
	for _, args := range bad {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		declareFlags(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatalf("%v: parse: %v", args, err)
		}
		if err := validateFlags(fs); err == nil {
			t.Errorf("%v accepted, want rejection", args)
		}
	}
}

// TestValidateFlagsKeepsSentinelDefaults: the documented sentinel
// defaults (-retries -1 meaning "policy default", -sample-timeout 0)
// must pass when not explicitly set, and sane explicit values pass too.
func TestValidateFlagsKeepsSentinelDefaults(t *testing.T) {
	good := [][]string{
		{}, // nothing set: sentinel defaults stand
		{"-retries", "0"},
		{"-retries", "5"},
		{"-sample-timeout", "250ms"},
		{"-seeds", "0"},
		{"-episodes", "100", "-samples", "3", "-checkpoint-every", "50"},
	}
	for _, args := range good {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		declareFlags(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatalf("%v: parse: %v", args, err)
		}
		if err := validateFlags(fs); err != nil {
			t.Errorf("%v rejected: %v", args, err)
		}
	}
}

// TestSearchCheckpointMatchesPlain: a search run through the durable
// checkpoint path prints the same report as the plain path, and leaves
// a loadable snapshot behind.
func TestSearchCheckpointMatchesPlain(t *testing.T) {
	dir := t.TempDir()
	df := durableFlags{checkpoint: dir, every: 50}
	durable, err := capture(t, func() error {
		return runCtx(context.Background(), "search", "lenet5", "cpu",
			fastEpisodes, fastSamples, 1, "", "tx2-like", 1, 1, faultFlags{}, df, engineFlags{}, serveFlags{})
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := capture(t, func() error {
		return runCtx(context.Background(), "search", "lenet5", "cpu",
			fastEpisodes, fastSamples, 1, "", "tx2-like", 1, 1, faultFlags{}, durableFlags{}, engineFlags{}, serveFlags{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if durable != plain {
		t.Errorf("durable search output differs from plain:\n--- durable\n%s\n--- plain\n%s", durable, plain)
	}
	if _, err := store.Read(filepath.Join(dir, "checkpoint.qsd")); err != nil {
		t.Errorf("final snapshot unreadable: %v", err)
	}
}

// TestSearchResumeFromSnapshot: rewind the checkpoint to the previous
// rotation (a mid-run snapshot) and -resume — the resumed invocation
// must print the same report as the uninterrupted run.
func TestSearchResumeFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "checkpoint.qsd")

	// Reference: uninterrupted durable run.
	ref, err := capture(t, func() error {
		return runCtx(context.Background(), "search", "lenet5", "cpu",
			fastEpisodes, fastSamples, 1, "", "tx2-like", 1, 1, faultFlags{},
			durableFlags{checkpoint: dir, every: 60}, engineFlags{}, serveFlags{})
	})
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a crash: rewind the checkpoint to a mid-run snapshot by
	// re-running only the first chunk boundary's worth of state. The
	// simplest faithful rewind uses the previous rotation left by the
	// final save.
	prev := store.PreviousPath(ckPath)
	if _, err := os.Stat(prev); err != nil {
		t.Fatalf("no previous rotation after run: %v", err)
	}
	raw, err := os.ReadFile(prev)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, err := capture(t, func() error {
		return runCtx(context.Background(), "search", "lenet5", "cpu",
			fastEpisodes, fastSamples, 1, "", "tx2-like", 1, 1, faultFlags{},
			durableFlags{checkpoint: dir, resume: true, every: 60}, engineFlags{}, serveFlags{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed != ref {
		t.Errorf("resumed output differs from uninterrupted:\n--- resumed\n%s\n--- reference\n%s", resumed, ref)
	}
}

// TestSearchResumeCorruptFallsBack: flip a byte in the current
// snapshot; -resume must fall back to the previous rotation and still
// complete with the uninterrupted output.
func TestSearchResumeCorruptFallsBack(t *testing.T) {
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "checkpoint.qsd")
	ref, err := capture(t, func() error {
		return runCtx(context.Background(), "search", "lenet5", "cpu",
			fastEpisodes, fastSamples, 1, "", "tx2-like", 1, 1, faultFlags{},
			durableFlags{checkpoint: dir, every: 60}, engineFlags{}, serveFlags{})
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(ckPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, err := capture(t, func() error {
		return runCtx(context.Background(), "search", "lenet5", "cpu",
			fastEpisodes, fastSamples, 1, "", "tx2-like", 1, 1, faultFlags{},
			durableFlags{checkpoint: dir, resume: true, every: 60}, engineFlags{}, serveFlags{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed != ref {
		t.Errorf("corrupt-fallback resume differs from uninterrupted:\n--- resumed\n%s\n--- reference\n%s", resumed, ref)
	}
}

// TestSearchResumeNoSnapshotErrors: -resume with an empty checkpoint
// directory must error rather than silently starting over.
func TestSearchResumeNoSnapshotErrors(t *testing.T) {
	_, err := capture(t, func() error {
		return runCtx(context.Background(), "search", "lenet5", "cpu",
			fastEpisodes, fastSamples, 1, "", "tx2-like", 1, 1, faultFlags{},
			durableFlags{checkpoint: t.TempDir(), resume: true, every: 60}, engineFlags{}, serveFlags{})
	})
	if err == nil || !strings.Contains(err.Error(), "resume") {
		t.Errorf("want resume error, got %v", err)
	}
}

// TestBenchAllManifestResume: a bench-all with -manifest, re-invoked
// on the same directory, restores every unit and prints an identical
// deterministic summary (the wall-clock section necessarily differs).
func TestBenchAllManifestResume(t *testing.T) {
	dir := t.TempDir()
	df := durableFlags{manifest: dir}
	bench := func() string {
		out, err := capture(t, func() error {
			return runCtx(context.Background(), "bench-all", "lenet5", "both",
				fastEpisodes, fastSamples, 1, "", "tx2-like", 2, 2, faultFlags{}, df, engineFlags{}, serveFlags{})
		})
		if err != nil {
			t.Fatal(err)
		}
		i := strings.Index(out, "batch wall-clock")
		if i < 0 {
			t.Fatalf("no timing section in output:\n%s", out)
		}
		return out[:i]
	}
	first := bench()
	second := bench()
	if first != second {
		t.Errorf("resumed bench-all summary differs:\n--- first\n%s\n--- second\n%s", first, second)
	}

	// The journal holds one record per (network, mode, seed) unit plus
	// its stored LUT blobs.
	man, err := store.OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer man.Close()
	if man.Len() != 4 {
		t.Errorf("manifest has %d records, want 4", man.Len())
	}
}
