// Command qsdnn is the CLI front end of the QS-DNN pipeline:
//
//	qsdnn models                      list the model zoo
//	qsdnn profile  -net NAME [...]    run the inference phase, write the LUT as JSON
//	qsdnn search   -net NAME [...]    profile (or load) and run the RL search
//	qsdnn space    -net NAME          show the design-space size per network
//
// Common flags: -mode cpu|gpgpu, -episodes, -samples, -seed, -lut FILE.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"net"
	"net/http"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gemm"
	"repro/internal/health"
	"repro/internal/lut"
	"repro/internal/models"
	"repro/internal/plan"
	"repro/internal/platform"
	"repro/internal/primitives"
	"repro/internal/profile"
	"repro/internal/qlearn"
	"repro/internal/resilience"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/tensor"

	qsdnn "repro"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	netName := fs.String("net", "mobilenet-v1", "zoo network name (bench-all: comma-separated list or 'all')")
	modeStr := fs.String("mode", "gpgpu", "processor mode: cpu or gpgpu (bench-all also accepts 'both')")
	episodes := fs.Int("episodes", 1000, "search episode budget")
	samples := fs.Int("samples", 50, "profiling samples per measurement")
	seed := fs.Int64("seed", 1, "random seed")
	lutFile := fs.String("lut", "", "LUT JSON file to write (profile) or read (search)")
	platName := fs.String("platform", "tx2-like", "board preset (tx2-like, tx1-like, nano-like, xavier-like, cpu-only)")
	parallel := fs.Int("parallel", 0, "bench-all worker pool size (0 = one per CPU)")
	seeds := fs.Int("seeds", 1, "bench-all best-of-N consecutive seeds per job")
	robust := fs.Bool("robust", false, "profile with the fault-tolerant policy (retry, timeout, robust aggregation, degradation)")
	retries := fs.Int("retries", -1, "robust profiling: retry budget per measurement (-1 = policy default)")
	sampleTimeout := fs.Duration("sample-timeout", 0, "robust profiling: per-measurement timeout (0 = policy default)")
	faultSeed := fs.Int64("fault-seed", 0, "inject a seeded deterministic fault schedule into profiling (0 = off; implies -robust)")
	manifestDir := fs.String("manifest", "", "bench-all: durable run manifest directory; a re-invoked run skips completed, verified jobs")
	checkpointDir := fs.String("checkpoint", "", "search: durable checkpoint directory (periodic snapshots with last-good rotation)")
	resume := fs.Bool("resume", false, "search: continue from the newest valid snapshot in -checkpoint")
	checkpointEvery := fs.Int("checkpoint-every", core.DefaultSnapshotEvery, "search: snapshot cadence in episodes")
	realEngine := fs.Bool("engine", false, "profile on the real host-CPU engine instead of the platform simulator (requires -mode cpu)")
	kernelWorkers := fs.Int("kernel-workers", 0, "engine kernel worker count for -engine profiling (0 = one per CPU)")
	addr := fs.String("addr", "127.0.0.1:8080", "serve: listen address")
	maxInflight := fs.Int("max-inflight", 0, "serve: concurrent searches (0 = one per CPU)")
	queueDepth := fs.Int("queue-depth", 64, "serve: bounded admission queue depth (full queue replies 429)")
	planStore := fs.String("plan-store", "", "serve: durable plan/checkpoint directory (empty = in-memory only, no crash resume)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "serve: graceful-drain budget on SIGINT/SIGTERM before in-flight searches checkpoint and stop")
	maxDeadline := fs.Duration("max-deadline", 0, "serve: cap on per-request deadline_ms budgets; also the default budget for requests without one (0 = uncapped)")
	brownout := fs.Bool("brownout", false, "serve: degraded mode — answer over-budget/failing requests with the newest cached plan of the same network/platform/mode/objective, marked degraded, instead of an error")
	breakerFailures := fs.Int("breaker-failures", 0, "serve: trip a per-(platform,library) circuit breaker after N consecutive profiling failures (0 = breakers off)")
	breakerCooldown := fs.Duration("breaker-cooldown", 5*time.Second, "serve: how long a tripped breaker rejects before half-open probes")
	watchdogStall := fs.Duration("watchdog-stall", 0, "serve: cancel jobs whose progress heartbeat goes quiet for longer than this floor (0 = watchdog off)")
	watchdogMult := fs.Float64("watchdog-multiple", 8, "serve: stall limit as a multiple of each job's learned heartbeat cadence (floor -watchdog-stall)")
	canaryInterval := fs.Duration("canary-interval", 0, "serve: background canary re-profiling cadence; each tick re-measures a deterministic rotating subset of LUT entries and quarantines drifted libraries (0 = off)")
	driftBand := fs.Float64("drift-band", 4, "serve: drift threshold in MAD-scaled band widths — a canary measurement further than this from its stored baseline counts as drifted")
	planTTL := fs.Int64("plan-ttl", 0, "serve: profile epochs a cached plan stays fresh; older plans are served marked revalidating (0 = no TTL)")
	noHeal := fs.Bool("no-heal", false, "serve: disable self-healing re-optimization; quarantined plans stay cached and are served marked revalidating")
	batched := fs.Bool("batched-replay", false, "search: wave-ordered batched Bellman replay — deterministic and measurably faster, but the replay update ordering differs from the paper-faithful serial default")
	autotune := fs.Bool("autotune", false, "profile/search: run the per-layer kernel autotuner on the real engine (requires -engine -mode cpu); tuned variants join the LUT as extra candidates")
	tunerBudget := fs.Int("tuner-budget", 16, "autotune: real measurements per (layer, primitive) pair; the surrogate model shortlists this many variants out of the full space")
	tunerCache := fs.String("tuner-cache", "", "durable tuned-variant cache file: reused when it matches the network/mode/budget, written after a fresh -autotune run; serve feeds it into every matching table")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if err := validateFlags(fs); err != nil {
		fmt.Fprintln(os.Stderr, "qsdnn:", err)
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancel the context: in-flight work stops claiming,
	// partial batch results are flushed, and the process exits cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	batchedReplay = *batched
	tunerCfg = tunerFlags{autotune: *autotune, budget: *tunerBudget, cache: *tunerCache}
	ft := faultFlags{robust: *robust, retries: *retries, sampleTimeout: *sampleTimeout, faultSeed: *faultSeed}
	df := durableFlags{manifest: *manifestDir, checkpoint: *checkpointDir, resume: *resume, every: *checkpointEvery}
	ef := engineFlags{real: *realEngine, workers: *kernelWorkers, seed: *seed}
	sf := serveFlags{
		addr: *addr, maxInflight: *maxInflight, queueDepth: *queueDepth,
		planStore: *planStore, drainTimeout: *drainTimeout,
		maxDeadline: *maxDeadline, brownout: *brownout,
		breakerFailures: *breakerFailures, breakerCooldown: *breakerCooldown,
		watchdogStall: *watchdogStall, watchdogMult: *watchdogMult,
		canaryInterval: *canaryInterval, driftBand: *driftBand,
		planTTL: *planTTL, noHeal: *noHeal,
		tunerCache: *tunerCache,
	}
	if err := runCtx(ctx, cmd, *netName, *modeStr, *episodes, *samples, *seed, *lutFile, *platName, *parallel, *seeds, ft, df, ef, sf); err != nil {
		fmt.Fprintln(os.Stderr, "qsdnn:", err)
		os.Exit(1)
	}
}

// validateFlags rejects flag values that earlier versions silently
// passed through to the policy layer. Only flags the user explicitly
// set are checked, so the documented sentinel defaults (-retries -1,
// -sample-timeout 0) keep meaning "policy default".
func validateFlags(fs *flag.FlagSet) error {
	var err error
	fs.Visit(func(f *flag.Flag) {
		if err != nil {
			return
		}
		get := func() any { return f.Value.(flag.Getter).Get() }
		switch f.Name {
		case "retries":
			if get().(int) < 0 {
				err = fmt.Errorf("-retries must be >= 0 (got %s)", f.Value)
			}
		case "sample-timeout":
			if get().(time.Duration) <= 0 {
				err = fmt.Errorf("-sample-timeout must be positive (got %s)", f.Value)
			}
		case "seeds":
			if get().(int) < 0 {
				err = fmt.Errorf("-seeds must be >= 0 (got %s)", f.Value)
			}
		case "episodes":
			if get().(int) <= 0 {
				err = fmt.Errorf("-episodes must be positive (got %s)", f.Value)
			}
		case "samples":
			if get().(int) <= 0 {
				err = fmt.Errorf("-samples must be positive (got %s)", f.Value)
			}
		case "checkpoint-every":
			if get().(int) <= 0 {
				err = fmt.Errorf("-checkpoint-every must be positive (got %s)", f.Value)
			}
		case "kernel-workers":
			if get().(int) < 0 {
				err = fmt.Errorf("-kernel-workers must be >= 0 (got %s)", f.Value)
			}
		case "max-inflight":
			if get().(int) < 0 {
				err = fmt.Errorf("-max-inflight must be >= 0 (got %s)", f.Value)
			}
		case "queue-depth":
			if get().(int) <= 0 {
				err = fmt.Errorf("-queue-depth must be positive (got %s)", f.Value)
			}
		case "drain-timeout":
			if get().(time.Duration) < 0 {
				err = fmt.Errorf("-drain-timeout must be >= 0 (got %s)", f.Value)
			}
		case "max-deadline":
			if get().(time.Duration) < 0 {
				err = fmt.Errorf("-max-deadline must be >= 0 (got %s)", f.Value)
			}
		case "breaker-failures":
			if get().(int) < 0 {
				err = fmt.Errorf("-breaker-failures must be >= 0 (got %s)", f.Value)
			}
		case "breaker-cooldown":
			if get().(time.Duration) < 0 {
				err = fmt.Errorf("-breaker-cooldown must be >= 0 (got %s)", f.Value)
			}
		case "watchdog-stall":
			if get().(time.Duration) < 0 {
				err = fmt.Errorf("-watchdog-stall must be >= 0 (got %s)", f.Value)
			}
		case "watchdog-multiple":
			if get().(float64) <= 0 {
				err = fmt.Errorf("-watchdog-multiple must be positive (got %s)", f.Value)
			}
		case "canary-interval":
			if get().(time.Duration) < 0 {
				err = fmt.Errorf("-canary-interval must be >= 0 (got %s)", f.Value)
			}
		case "drift-band":
			if get().(float64) <= 0 {
				err = fmt.Errorf("-drift-band must be positive (got %s)", f.Value)
			}
		case "plan-ttl":
			if get().(int64) < 0 {
				err = fmt.Errorf("-plan-ttl must be >= 0 (got %s)", f.Value)
			}
		case "tuner-budget":
			if get().(int) < 2 {
				err = fmt.Errorf("-tuner-budget must be >= 2 — the default variant plus at least one challenger (got %s)", f.Value)
			}
		}
	})
	return err
}

// durableFlags bundles the crash-safe-state CLI flags.
type durableFlags struct {
	manifest   string
	checkpoint string
	resume     bool
	every      int
}

// serveFlags bundles the daemon CLI flags.
type serveFlags struct {
	addr            string
	maxInflight     int
	queueDepth      int
	planStore       string
	drainTimeout    time.Duration
	maxDeadline     time.Duration
	brownout        bool
	breakerFailures int
	breakerCooldown time.Duration
	watchdogStall   time.Duration
	watchdogMult    float64
	canaryInterval  time.Duration
	driftBand       float64
	planTTL         int64
	noHeal          bool
	tunerCache      string
}

// batchedReplay mirrors the -batched-replay flag: search commands set
// Agent.BatchedReplay from it. A package variable (not a runCtx
// parameter) so the many positional test call sites stay put; tests
// that want it set it directly.
var batchedReplay bool

// agentConfig returns the agent configuration the CLI search paths
// share: paper hyper-parameters, with the replay ordering chosen by
// -batched-replay.
func agentConfig() qlearn.Config {
	return qlearn.Config{BatchedReplay: batchedReplay}
}

// engineFlags bundles the real-engine profiling CLI flags.
type engineFlags struct {
	real    bool
	workers int
	seed    int64
}

// kernelWorkers resolves the worker count (0 means one per CPU).
func (f engineFlags) kernelWorkers() int {
	if f.workers > 0 {
		return f.workers
	}
	return runtime.NumCPU()
}

// faultFlags bundles the fault-tolerance CLI flags.
type faultFlags struct {
	robust        bool
	retries       int
	sampleTimeout time.Duration
	faultSeed     int64
}

// policy translates the flags into a robust measurement policy; nil
// means the strict legacy path. Fault injection implies the robust
// path — injected faults without recovery would just fail the run.
func (f faultFlags) policy() *qsdnn.RobustPolicy {
	if !f.robust && f.faultSeed == 0 {
		return nil
	}
	pol := qsdnn.DefaultRobustPolicy()
	if f.retries >= 0 {
		pol.MaxRetries = f.retries
	}
	if f.sampleTimeout > 0 {
		pol.SampleTimeout = f.sampleTimeout
	}
	return pol
}

// faults returns the injection schedule, or nil when disabled.
func (f faultFlags) faults() *qsdnn.FaultInjection {
	if f.faultSeed == 0 {
		return nil
	}
	fi := qsdnn.DefaultFaultInjection(f.faultSeed)
	return &fi
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: qsdnn <command> [flags]

commands:
  version    print build and runtime-dispatch info (Go version, GOOS/GOARCH,
             selected GEMM micro-kernel)
  models     list the model zoo
  platforms  list the board presets
  space      show design-space sizes
  profile    run the inference phase and write the look-up table
  search     run the full pipeline (or search a saved LUT) and report
  bench-all  optimize many networks concurrently on a bounded worker
             pool (-net all|name,name -mode cpu|gpgpu|both
             -parallel N -seeds K): the Table II sweep, parallelized
  pbqp       solve with partitioned boolean quadratic programming
  pareto     sweep the latency/energy trade-off (multi-objective)
  plan       search, then emit the deployment plan (+ Chrome trace with -lut FILE)
  analyze    search, then report bottleneck layers, streaming throughput
             and platform-sensitivity sweeps
  export     write a network's architecture as JSON (-lut FILE.json) and
             annotated Graphviz DOT (FILE.dot) after searching it
  serve      run the optimization daemon: POST /v1/optimize accepts
             {network, platform, mode, objective, episodes, samples,
             seed} and returns the optimized plan; GET /v1/jobs/{id}
             polls, GET /v1/jobs/{id}/events streams progress (SSE)

flags: -net NAME -mode cpu|gpgpu -platform NAME -episodes N -samples N -seed N -lut FILE
       -parallel N -seeds K (bench-all)
       -batched-replay                          search: wave-ordered batched Bellman
                                                replay (deterministic, faster; update
                                                ordering differs from the serial
                                                paper-faithful default)
       -engine -kernel-workers N                profile on the real host-CPU engine
                                                (-mode cpu) with N kernel goroutines
                                                (0 = one per CPU); kernel outputs are
                                                bit-identical at any worker count
       -robust -retries N -sample-timeout DUR   fault-tolerant profiling
       -fault-seed N                            seeded fault injection (testing)
       -manifest DIR                            bench-all: durable run journal; a
                                                re-invoked run skips completed,
                                                checksum-verified jobs
       -checkpoint DIR -resume -checkpoint-every N
                                                search: periodic durable snapshots
                                                with last-good rotation; -resume
                                                continues a killed search
       -addr HOST:PORT -max-inflight N -queue-depth N
       -plan-store DIR -drain-timeout DUR
                                                serve: listen address, concurrency
                                                and queue bounds, durable plan +
                                                checkpoint store, graceful-drain
                                                budget before a checkpointed stop
       -max-deadline DUR                        serve: cap (and default) for per-request
                                                deadline_ms budgets; at the deadline the
                                                best-so-far plan is returned, marked
                                                budget_exhausted
       -brownout                                serve: degraded mode — over-budget or
                                                failing requests get the newest cached
                                                plan of the same family, marked degraded,
                                                with an honest Retry-After
       -breaker-failures N -breaker-cooldown DUR
                                                serve: per-(platform,library) circuit
                                                breakers; trip after N consecutive
                                                profiling failures, probe again after
                                                the cooldown
       -watchdog-stall DUR -watchdog-multiple F serve: cancel jobs whose progress
                                                heartbeat is quiet past max(DUR,
                                                F x learned cadence)
       -canary-interval DUR -drift-band F       serve: plan health — every DUR, canary
                                                re-measurements of a rotating LUT subset;
                                                entries further than F MAD-scaled band
                                                widths from baseline quarantine their
                                                (platform, library) pair
       -plan-ttl N -no-heal                     serve: cached plans older than N profile
                                                epochs serve marked revalidating; -no-heal
                                                disables the background re-optimization of
                                                quarantined plans
       -autotune -tuner-budget N                per-layer kernel autotuning on the real
                                                engine (-engine -mode cpu): block sizes,
                                                micro-kernel, panel width, worker count;
                                                a surrogate cost model shortlists N real
                                                measurements per (layer, primitive) and
                                                winners join the LUT as extra candidates
       -tuner-cache FILE                        durable tuned-variant cache: written after
                                                -autotune, reused when it matches, fed into
                                                matching tables by profile/search/serve;
                                                "qsdnn version -tuner-cache FILE" prints it
SIGINT/SIGTERM interrupt cleanly: a running bench-all flushes its partial results;
a running serve drains, checkpoints what cannot finish, and resumes on restart.`)
}

func parseMode(s string) (primitives.Mode, error) {
	switch s {
	case "cpu":
		return primitives.ModeCPU, nil
	case "gpgpu":
		return primitives.ModeGPGPU, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want cpu or gpgpu)", s)
}

// run is the legacy entry point: background context, no fault or
// durability flags.
func run(cmd, netName, modeStr string, episodes, samples int, seed int64, lutFile, platName string, parallel, seeds int) error {
	return runCtx(context.Background(), cmd, netName, modeStr, episodes, samples, seed, lutFile, platName, parallel, seeds, faultFlags{}, durableFlags{}, engineFlags{}, serveFlags{})
}

// serveCmd runs the optimization-as-a-service daemon: an HTTP JSON API
// that admits (network, platform, objective, budget) requests onto a
// bounded queue, coalesces identical concurrent work, streams search
// progress, and persists plans and checkpoints durably. SIGINT/SIGTERM
// drain gracefully: admission stops, in-flight searches finish (or,
// past -drain-timeout, checkpoint and stop so a restart on the same
// -plan-store resumes them to byte-identical results).
func serveCmd(ctx context.Context, sf serveFlags, ft faultFlags, df durableFlags) error {
	ln, err := net.Listen("tcp", sf.addr)
	if err != nil {
		return err
	}
	cfg := serve.Config{
		MaxInflight:   sf.maxInflight,
		QueueDepth:    sf.queueDepth,
		PlanStore:     sf.planStore,
		SnapshotEvery: df.every,
		Robust:        ft.policy(),
		Faults:        ft.faults(),
		MaxDeadline:   sf.maxDeadline,
		Brownout:      sf.brownout,
		TunerCache:    sf.tunerCache,
		WatchdogStall: sf.watchdogStall,
		WatchdogMult:  sf.watchdogMult,
		Health: &health.Config{
			Interval: sf.canaryInterval,
			Band:     sf.driftBand,
			PlanTTL:  sf.planTTL,
			NoHeal:   sf.noHeal,
		},
	}
	if sf.breakerFailures > 0 {
		cfg.Breaker = &resilience.BreakerConfig{
			FailureThreshold: sf.breakerFailures,
			Cooldown:         sf.breakerCooldown,
		}
	}
	srv, err := serve.New(cfg)
	if err != nil {
		ln.Close()
		return err
	}
	if st := srv.Status(); st.Resumed > 0 || st.SkippedRec > 0 {
		fmt.Fprintf(os.Stderr, "qsdnn serve: resuming %d interrupted job(s), %d unreadable record(s) skipped\n",
			st.Resumed, st.SkippedRec)
	}
	// Hardened server timeouts: a client that trickles headers or bodies
	// byte-by-byte (Slowloris) is cut off instead of pinning a
	// connection forever. Long-lived responses — SSE streams and
	// wait-mode POSTs — clear their own write deadline per-connection
	// via http.NewResponseController inside the handlers, so WriteTimeout
	// here only bounds ordinary request/response exchanges.
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}
	// The listen line goes to stdout so scripted callers (and the
	// chaos tests) can parse the bound address under -addr :0.
	fmt.Printf("qsdnn serve listening on http://%s\n", ln.Addr())
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		srv.Drain(0)
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(os.Stderr, "qsdnn serve: draining (budget %s)\n", sf.drainTimeout)
	srv.Drain(sf.drainTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	hs.Shutdown(sctx)
	return nil
}

// searchDurable runs (or resumes) a search with periodic durable
// snapshots in df.checkpoint: every df.every episodes the agent state
// and best-so-far are written atomically with last-good/previous
// rotation. With df.resume, the newest valid snapshot continues the
// run — a snapshot that fails its CRC or schema validation falls back
// to the previous rotation (with a warning on stderr), and only when
// no valid snapshot exists does the resume error out.
func searchDurable(tab *lut.Table, cfg core.Config, df durableFlags) (*core.Result, error) {
	if err := os.MkdirAll(df.checkpoint, 0o755); err != nil {
		return nil, err
	}
	ckPath := filepath.Join(df.checkpoint, "checkpoint.qsd")
	var from *core.Snapshot
	if df.resume {
		payload, gen, warn, err := store.LoadRotating(ckPath, func(p []byte) error {
			_, verr := core.LoadSnapshot(p, tab)
			return verr
		})
		if err != nil {
			return nil, fmt.Errorf("resume: %w", err)
		}
		if warn != nil {
			fmt.Fprintf(os.Stderr, "qsdnn: warning: current snapshot invalid (%v); resuming from %s rotation\n", warn, gen)
		}
		from, err = core.LoadSnapshot(payload, tab)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "qsdnn: resuming from episode %d/%d\n", from.Checkpoint.Episode, max(cfg.Episodes, 1))
	}
	res, _, err := core.SearchCheckpointed(tab, cfg, core.DurableOptions{
		Every: df.every,
		From:  from,
		Save: func(s *core.Snapshot) error {
			payload, err := s.Marshal()
			if err != nil {
				return err
			}
			return store.SaveRotating(ckPath, payload)
		},
	})
	return res, err
}

// profileTable runs the inference phase for one network under the
// fault flags, printing the degradation report when anything fired.
// With ef.real it measures on the actual host-CPU engine (kernels run
// with -kernel-workers goroutines) instead of the platform simulator.
func profileTable(ctx context.Context, ft faultFlags, ef engineFlags, net *qsdnn.Network, board *platform.Platform, mode primitives.Mode, samples int) (*lut.Table, error) {
	if tunerCfg.enabled() {
		// Twins must exist before the table is built so tuned ids fit
		// the candidate bounds.
		primitives.EnableTunedVariants()
	}
	var base profile.Source
	var src profile.FallibleSource
	var es *engine.Source
	if ef.real {
		if mode != primitives.ModeCPU {
			return nil, fmt.Errorf("-engine measures on the host CPU, which cannot run GPU primitives; use -mode cpu")
		}
		eng := engine.New(net, ef.seed, 0, engine.Parallelism(ef.kernelWorkers()))
		in := tensor.New(net.InputShape, tensor.NCHW)
		in.FillRandom(rand.New(rand.NewSource(ef.seed)), 1)
		var err error
		es, err = engine.NewSource(eng, in)
		if err != nil {
			return nil, err
		}
		base, src = es, es
	} else {
		sim := profile.NewSimSource(net, board)
		base, src = sim, profile.AsFallible(sim)
	}
	if f := ft.faults(); f != nil {
		src = profile.NewFaultSource(base, *f)
	}
	tab, rep, err := profile.RunFallible(ctx, net, src, profile.Options{
		Mode: mode, Samples: samples, Robust: ft.policy(),
	})
	if err != nil {
		return nil, err
	}
	if rep != nil && (rep.Flaky() || rep.Degraded()) {
		fmt.Print(rep.Render())
	}
	if tunerCfg.enabled() {
		if err := applyTuning(ctx, ft, net, tab, es, ef.seed); err != nil {
			return nil, err
		}
	}
	return tab, nil
}

func runCtx(ctx context.Context, cmd, netName, modeStr string, episodes, samples int, seed int64, lutFile, platName string, parallel, seeds int, ft faultFlags, df durableFlags, ef engineFlags, sf serveFlags) error {
	board, ok := platform.Preset(platName)
	if !ok {
		return fmt.Errorf("unknown platform %q", platName)
	}
	switch cmd {
	case "version":
		fmt.Printf("qsdnn (QS-DNN reproduction) %s %s/%s\n", runtime.Version(), runtime.GOOS, runtime.GOARCH)
		fmt.Printf("gemm kernel: %s (variants: %s)\n", gemm.ActiveKernel(), strings.Join(gemm.KernelVariants(), ", "))
		tunerVersionInfo()
		return nil
	case "serve":
		return serveCmd(ctx, sf, ft, df)
	case "bench-all":
		var modes []primitives.Mode
		if modeStr == "both" {
			modes = []primitives.Mode{primitives.ModeCPU, primitives.ModeGPGPU}
		} else {
			mode, err := parseMode(modeStr)
			if err != nil {
				return err
			}
			modes = []primitives.Mode{mode}
		}
		nets := strings.Split(netName, ",")
		if netName == "all" || netName == "" {
			nets = models.All()
		}
		var jobs []qsdnn.BatchJob
		for _, n := range nets {
			for _, m := range modes {
				jobs = append(jobs, qsdnn.BatchJob{Network: strings.TrimSpace(n), Mode: m})
			}
		}
		batch, err := qsdnn.OptimizeBatchContext(ctx, jobs, qsdnn.BatchOptions{
			Options:     qsdnn.Options{Episodes: episodes, Samples: samples, Seed: seed},
			Workers:     parallel,
			BestOf:      seeds,
			Platform:    board,
			Robust:      ft.policy(),
			Faults:      ft.faults(),
			ManifestDir: df.manifest,
		})
		if err != nil {
			return err
		}
		if df.manifest != "" {
			// Resume bookkeeping goes to stderr so the summary on
			// stdout stays byte-identical to an uninterrupted run.
			fmt.Fprintf(os.Stderr, "manifest %s: %d jobs restored, %d run\n",
				df.manifest, batch.Restored, len(jobs)*max(seeds, 1)-batch.Restored)
		}
		fmt.Print(batch.Summary())
		fmt.Println()
		fmt.Print(batch.TimingSummary())
		if batch.Canceled {
			return fmt.Errorf("interrupted: %w", context.Cause(ctx))
		}
		return nil
	case "models":
		for _, name := range models.All() {
			net := models.MustBuild(name)
			fmt.Printf("%-14s %4d layers  %8.1f MFLOPs  %7.2fM params\n",
				name, net.Len()-1, float64(net.TotalFLOPs())/1e6, float64(net.TotalWeights())/1e6)
		}
		return nil

	case "platforms":
		names := make([]string, 0, len(platform.Presets()))
		for n := range platform.Presets() {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			p, _ := platform.Preset(n)
			fmt.Printf("%-12s CPU %5.0f GFLOPs  GPU %5.0f GFLOPs  transfer %4.1f GB/s + %3.0f us\n",
				n, p.CPUPeakGFLOPS, p.GPUPeakGFLOPS, p.TransferGBps, p.TransferFixedSec*1e6)
		}
		return nil

	case "pbqp":
		mode, err := parseMode(modeStr)
		if err != nil {
			return err
		}
		net, err := models.Build(netName)
		if err != nil {
			return err
		}
		tab, err := profileTable(ctx, ft, ef, net, board, mode, samples)
		if err != nil {
			return err
		}
		pb := core.PBQP(tab)
		rl := core.Search(tab, core.Config{Episodes: episodes, Seed: seed})
		fmt.Printf("%s (%s, %s)\n  PBQP   : %10.3f ms\n  QS-DNN : %10.3f ms\n",
			netName, mode, platName, pb.Time*1e3, rl.Time*1e3)
		return nil

	case "plan":
		mode, err := parseMode(modeStr)
		if err != nil {
			return err
		}
		net, err := models.Build(netName)
		if err != nil {
			return err
		}
		tab, err := profileTable(ctx, ft, ef, net, board, mode, samples)
		if err != nil {
			return err
		}
		res := core.Search(tab, core.Config{Episodes: episodes, Seed: seed})
		p, err := plan.Build(net, tab, res.Assignment)
		if err != nil {
			return err
		}
		fmt.Print(p.Render())
		fmt.Printf("\n%d transfers, %d conversions, %.3f ms total\n",
			p.Transfers(), p.Conversions(), p.TotalSeconds*1e3)
		if lutFile != "" {
			trace, err := p.ChromeTrace()
			if err != nil {
				return err
			}
			if err := store.WriteFileAtomic(lutFile, trace, 0o644); err != nil {
				return err
			}
			fmt.Printf("chrome trace written to %s\n", lutFile)
		}
		return nil

	case "export":
		mode, err := parseMode(modeStr)
		if err != nil {
			return err
		}
		net, err := models.Build(netName)
		if err != nil {
			return err
		}
		tab, err := profileTable(ctx, ft, ef, net, board, mode, samples)
		if err != nil {
			return err
		}
		res := core.Search(tab, core.Config{Episodes: episodes, Seed: seed})
		if lutFile == "" {
			lutFile = netName + ".json"
		}
		arch, err := json.MarshalIndent(net, "", " ")
		if err != nil {
			return err
		}
		if err := store.WriteFileAtomic(lutFile, arch, 0o644); err != nil {
			return err
		}
		dot := net.ToDot(func(i int) string {
			if i == 0 {
				return ""
			}
			p := primitives.ByID(res.Assignment[i])
			return fmt.Sprintf("%s (%s, %.3fms)", p.Name, p.Proc, tab.Time(i, p.Idx)*1e3)
		})
		dotFile := strings.TrimSuffix(lutFile, ".json") + ".dot"
		if err := store.WriteFileAtomic(dotFile, []byte(dot), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (architecture JSON) and %s (annotated Graphviz)\n", lutFile, dotFile)
		return nil

	case "analyze":
		mode, err := parseMode(modeStr)
		if err != nil {
			return err
		}
		net, err := models.Build(netName)
		if err != nil {
			return err
		}
		tab, err := profileTable(ctx, ft, ef, net, board, mode, samples)
		if err != nil {
			return err
		}
		res := core.Search(tab, core.Config{Episodes: episodes, Seed: seed})
		fmt.Printf("%s on %s (%s): optimized %.3f ms\n\n", netName, platName, mode, res.Time*1e3)

		reports, err := analysis.Bottlenecks(net, tab, res.Assignment)
		if err != nil {
			return err
		}
		fmt.Print(analysis.RenderBottlenecks(reports, 8))

		p, err := plan.Build(net, tab, res.Assignment)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(sched.Analyze(p).Render())

		if mode == primitives.ModeGPGPU {
			fmt.Println()
			points, err := analysis.Sensitivity(net, board, analysis.TransferCost, nil, episodes, seed)
			if err != nil {
				return err
			}
			fmt.Print(analysis.RenderSensitivity(analysis.TransferCost, points))
		}
		return nil

	case "pareto":
		mode, err := parseMode(modeStr)
		if err != nil {
			return err
		}
		net, err := models.Build(netName)
		if err != nil {
			return err
		}
		tt, et, err := profile.RunWithEnergyContext(ctx, net, profile.NewSimSource(net, board),
			profile.Options{Mode: mode, Samples: samples, Robust: ft.policy()})
		if err != nil {
			return err
		}
		front, err := core.ParetoFront(tt, et, nil, core.Config{Episodes: episodes, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Printf("latency/energy Pareto front for %s on %s:\n", netName, platName)
		for _, p := range front {
			fmt.Printf("  %10.3f ms  %10.3f mJ   (lambda %g)\n", p.Seconds*1e3, p.Joules*1e3, p.Lambda)
		}
		return nil

	case "space":
		net, err := models.Build(netName)
		if err != nil {
			return err
		}
		for _, mode := range []primitives.Mode{primitives.ModeCPU, primitives.ModeGPGPU} {
			fmt.Printf("%s %-6s design space: %.3g configurations (max %d variants/layer)\n",
				netName, mode, primitives.SpaceSize(net, mode), primitives.MaxCandidates(net, mode))
		}
		return nil

	case "profile":
		mode, err := parseMode(modeStr)
		if err != nil {
			return err
		}
		net, err := models.Build(netName)
		if err != nil {
			return err
		}
		tab, err := profileTable(ctx, ft, ef, net, board, mode, samples)
		if err != nil {
			return err
		}
		data, err := json.MarshalIndent(tab, "", " ")
		if err != nil {
			return err
		}
		if lutFile == "" {
			lutFile = netName + "-" + modeStr + ".lut.json"
		}
		if err := store.WriteFileAtomic(lutFile, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("profiled %s (%s): %d layers, %d edges -> %s (%d bytes)\n",
			netName, mode, tab.NumLayers()-1, len(tab.Edges()), lutFile, len(data))
		return nil

	case "search":
		mode, err := parseMode(modeStr)
		if err != nil {
			return err
		}
		net, err := models.Build(netName)
		if err != nil {
			return err
		}
		var tab *lut.Table
		if lutFile != "" {
			data, err := os.ReadFile(lutFile)
			if err != nil {
				return err
			}
			tab, err = lut.Load(data, net)
			if err != nil {
				return err
			}
		} else {
			tab, err = profileTable(ctx, ft, ef, net, board, mode, samples)
			if err != nil {
				return err
			}
		}
		var rep *qsdnn.Report
		if df.checkpoint != "" {
			res, err := searchDurable(tab, core.Config{Episodes: episodes, Seed: seed, Agent: agentConfig()}, df)
			if err != nil {
				return err
			}
			rep, err = qsdnn.ReportForResult(net, tab, res)
			if err != nil {
				return err
			}
		} else {
			rep, err = qsdnn.OptimizeTable(net, tab, qsdnn.Options{
				Mode: mode, Episodes: episodes, Samples: samples, Seed: seed,
				Search: qsdnn.SearchConfig{Agent: agentConfig()},
			})
			if err != nil {
				return err
			}
		}
		fmt.Print(rep.Summary())
		fmt.Printf("  random search    : %10.3f ms (same budget)\n",
			core.RandomSearch(tab, episodes, seed).Time*1e3)
		fmt.Printf("  greedy per layer : %10.3f ms\n", core.Greedy(tab).Time*1e3)
		fmt.Println("\nlibrary mix:")
		mix := rep.LibraryMix()
		libs := make([]string, 0, len(mix))
		for lib := range mix {
			libs = append(libs, lib)
		}
		sort.Strings(libs)
		for _, lib := range libs {
			fmt.Printf("  %-10s %3d layers\n", lib, mix[lib])
		}
		fmt.Println("\nper-layer selection:")
		for _, c := range rep.Choices {
			fmt.Printf("  %-28s %-14s -> %-22s (%s, %.4f ms)\n",
				c.Layer, c.Kind, c.Primitive, c.Processor, c.Seconds*1e3)
		}
		return nil
	}
	usage()
	return fmt.Errorf("unknown command %q", cmd)
}
