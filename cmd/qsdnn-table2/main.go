// Command qsdnn-table2 regenerates the paper's Table II: per-library,
// Best-Single-Library, QS-DNN and Random-Search inference-time
// speedups over the Vanilla baseline for every benchmark network, in
// CPU and GPGPU modes, on the TX2-like platform model.
//
// Usage:
//
//	qsdnn-table2 [-networks lenet5,alexnet,...] [-episodes 1000] [-samples 50] [-seed 1]
//	             [-parallel N] [-seeds K]
//
// -parallel fans the per-(network, mode) jobs across a bounded worker
// pool (0 = one worker per CPU); -seeds runs best-of-K consecutive
// seeds per job. The default (-parallel 1 -seeds 1) reproduces the
// sequential single-seed sweep exactly.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/models"
	"repro/internal/platform"
	"repro/internal/report"
)

func main() {
	networks := flag.String("networks", strings.Join(models.TableIINetworks(), ","),
		"comma-separated list of zoo networks")
	episodes := flag.Int("episodes", 1000, "search episode budget per network")
	samples := flag.Int("samples", 50, "profiling samples per measurement")
	seed := flag.Int64("seed", 1, "random seed")
	parallel := flag.Int("parallel", 1, "worker pool size (0 = one per CPU)")
	seeds := flag.Int("seeds", 1, "best-of-N consecutive seeds per network and mode")
	flag.Parse()

	pl := platform.JetsonTX2Like()
	opts := report.Options{Episodes: *episodes, Samples: *samples, Seed: *seed}
	rows, err := report.TableIIParallel(strings.Split(*networks, ","), pl, opts, *parallel, *seeds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsdnn-table2:", err)
		os.Exit(1)
	}
	fmt.Print(report.FormatTableII(rows))
}
