// Command qsdnn-figures regenerates the paper's figures as CSV series
// (and an ASCII rendering of the learning curve):
//
//	-fig 1   greedy-trap demonstration (Fig. 1): per-layer-greedy vs
//	         QS-DNN total time on a profiled network
//	-fig 4   learning curve of one 1000-episode search (Fig. 4)
//	-fig 5   RL vs Random Search across episode budgets, mean of N
//	         complete searches per point (Fig. 5)
//
// Usage:
//
//	qsdnn-figures -fig 4 [-net mobilenet-v1] [-episodes 1000] [-repeats 5] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/platform"
	"repro/internal/report"
)

func main() {
	fig := flag.Int("fig", 4, "figure to regenerate: 1, 4 or 5")
	nets := flag.String("net", "mobilenet-v1", "comma-separated zoo networks")
	episodes := flag.Int("episodes", 1000, "episode budget")
	samples := flag.Int("samples", 50, "profiling samples per measurement")
	repeats := flag.Int("repeats", 5, "complete searches per Fig. 5 point")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	pl := platform.JetsonTX2Like()
	opts := report.Options{Episodes: *episodes, Samples: *samples, Seed: *seed}
	for _, net := range strings.Split(*nets, ",") {
		if err := run(*fig, net, pl, *repeats, opts); err != nil {
			fmt.Fprintln(os.Stderr, "qsdnn-figures:", err)
			os.Exit(1)
		}
	}
}

func run(fig int, net string, pl *platform.Platform, repeats int, opts report.Options) error {
	switch fig {
	case 1:
		greedy, rl, err := report.Fig1Demo(net, pl, opts)
		if err != nil {
			return err
		}
		fmt.Printf("# Fig. 1 — %s: greedy (fastest primitive per layer, penalties ignored) vs QS-DNN\n", net)
		fmt.Printf("greedy_ms,%0.4f\nqsdnn_ms,%0.4f\ngreedy_over_qsdnn,%0.2f\n",
			greedy*1e3, rl*1e3, greedy/rl)
	case 4:
		curve, err := report.Fig4(net, pl, opts)
		if err != nil {
			return err
		}
		fmt.Printf("# Fig. 4 — %s learning curve (%d episodes)\n", net, opts.Episodes)
		fmt.Print(report.FormatCurveCSV(curve))
		fmt.Println()
		fmt.Print(report.ASCIIPlot(curve, 72, 14))
	case 5:
		points, err := report.Fig5(net, pl, repeats, opts)
		if err != nil {
			return err
		}
		fmt.Printf("# Fig. 5 — %s: RL vs Random Search, mean of %d complete searches per budget\n",
			net, repeats)
		fmt.Print(report.FormatFig5CSV(points))
	default:
		return fmt.Errorf("unknown figure %d (want 1, 4 or 5)", fig)
	}
	return nil
}
